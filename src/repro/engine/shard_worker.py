"""Shard worker processes: per-shard plan execution for scatter-gather.

Where :mod:`~repro.engine.chunk_worker` ships one decode task per chunk and
leaves alignment/filtering to the parent, a *shard* worker owns a whole
partition of the warehouse: its own :class:`~repro.engine.chunk_store.
ChunkStore` (under ``<workdir>/shards/shard-NN/chunks``), its own budgeted
:class:`~repro.engine.recycler.Recycler` in front of it, and its own decode
kernels.  The parent's :class:`~repro.engine.sharding.ScatterGatherCoordinator`
splits a :class:`~repro.engine.chunk_planner.ChunkPlan` into per-shard
:class:`ShardTask`\\ s; :func:`execute_shard_plan` runs one of them end to
end — fetch in the sub-plan's scheduled order, align, apply the pushed
predicate — and ships the *filtered* pieces back by pickle together with
per-chunk outcome receipts (so the parent's ``ExecStats`` and chunk-stats
catalog stay exact without ever seeing the full chunks).

Worker state persists across tasks: the recycler stays warm between queries,
and because decoded chunks are committed to the shard's on-disk store, a
reopened database comes back warm per-shard too.

Cancellation crosses the process boundary as a filesystem sentinel: the
parent touches ``task.cancel_path`` when its :class:`~repro.engine.physical.
CancelToken` fires, and workers poll it at every chunk boundary
(``multiprocessing.Event`` cannot ride through spawn initargs).

Everything here must stay importable by a spawn-context child.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from .database import qualify_chunk
from .errors import ExecutionError, FormatError, QueryCancelled
from .table import Table

__all__ = [
    "ShardTask",
    "ShardResult",
    "initialize_shard_worker",
    "shard_worker_ready",
    "execute_shard_plan",
    "warm_chunk",
]

_SHARD_ID: int | None = None
_LOADER = None
_STORE = None
_RECYCLER = None


@dataclass(frozen=True)
class ShardTask:
    """One shard's slice of a chunk plan, in parent assembly order.

    ``uris`` keeps the parent plan's assembly order restricted to this
    shard; ``fetch_order`` holds *local* indexes into it in the parent
    scheduler's descending-cost order, so the global fetch discipline is
    preserved within each shard.
    """

    table_name: str
    uris: tuple[str, ...]
    fetch_order: tuple[int, ...]
    column_names: tuple[str, ...]
    predicate: object | None
    cancel_path: str | None


@dataclass
class ShardResult:
    """What one shard ships back: filtered pieces plus accounting receipts.

    ``pieces`` is aligned with ``ShardTask.uris`` (local assembly order).
    ``receipts`` holds ``(uri, outcome, num_rows, cost_seconds, ranges)``
    per fetched chunk — ``ranges`` are exact column min/max bounds computed
    worker-side for freshly decoded or re-hydrated chunks (the parent never
    sees the full chunk, so enrichment must travel with the receipt).
    """

    shard_id: int
    pieces: list[Table]
    receipts: list[tuple[str, str, int, float, dict | None]]
    kernel: str


def initialize_shard_worker(
    shard_id: int,
    loader,
    store_root: str,
    recycler_bytes: int,
    kernel_name: str | None = None,
    spill_on_evict: bool = True,
) -> None:
    """Install per-process shard state (``ProcessPoolExecutor`` initializer).

    ``kernel_name`` is the parent's active Steim kernel: spawn children
    re-read ``REPRO_STEIM_KERNEL`` on import, but a kernel selected via
    ``set_kernel()`` in the parent would otherwise silently diverge.  An
    unknown name (e.g. numba available in the parent only) falls back to
    the worker's own default rather than failing initialization.

    ``spill_on_evict`` mirrors the parent recycler's setting: benchmarks
    model a strictly remote repository by disabling the disk tier, and a
    shard worker quietly re-enabling it would dissolve that regime.
    """
    global _SHARD_ID, _LOADER, _STORE, _RECYCLER
    from ..mseed import steim_kernels
    from .chunk_store import ChunkStore
    from .recycler import Recycler

    _SHARD_ID = int(shard_id)
    _LOADER = loader
    _STORE = ChunkStore(store_root)
    _RECYCLER = Recycler(
        max(1, int(recycler_bytes)),
        store=_STORE,
        spill_on_evict=spill_on_evict,
    )
    if kernel_name:
        try:
            steim_kernels.set_kernel(kernel_name)
        except FormatError:
            pass


def _require_initialized() -> None:
    if _LOADER is None or _STORE is None or _RECYCLER is None:
        raise ExecutionError(
            "shard worker used before initialize_shard_worker ran"
        )


def _active_kernel() -> str:
    from ..mseed import steim_kernels

    return steim_kernels.active_kernel()


def shard_worker_ready(_token: int = 0) -> tuple[int, str]:
    """Warm-up probe; reports (shard_id, active decode kernel)."""
    _require_initialized()
    return _SHARD_ID, _active_kernel()


def _check_cancelled(cancel_path: str | None) -> None:
    if cancel_path is not None and os.path.exists(cancel_path):
        raise QueryCancelled(
            f"shard {_SHARD_ID}: query cancelled by coordinator"
        )


def _decode_chunk(uri: str, table_name: str) -> tuple[Table, float]:
    """Loader for the shard recycler: decode + qualify + persist.

    The decoded chunk is committed to the shard store immediately (not just
    on eviction) so a restarted database re-hydrates it as mmap columns —
    per-shard warm restarts are part of the checkpoint contract.
    """
    started = time.perf_counter()
    raw = _LOADER.load(uri, table_name)
    elapsed = time.perf_counter() - started
    chunk = qualify_chunk(raw, table_name)
    if _RECYCLER.spill_on_evict and uri not in _STORE:
        _STORE.put(uri, chunk, elapsed, table_name=table_name)
    return chunk, elapsed


def _fetch_one(
    uri: str, table_name: str
) -> tuple[Table, tuple[str, str, int, float, dict | None]]:
    """Fetch one chunk through the shard's two-tier recycler."""
    from .chunk_stats import compute_column_ranges

    chunk, outcome, cost = _RECYCLER.get_or_load(
        uri, lambda u: _decode_chunk(u, table_name)
    )
    ranges = None
    if outcome in ("loaded", "rehydrated"):
        ranges = compute_column_ranges(chunk)
    return chunk, (uri, outcome, chunk.num_rows, cost, ranges)


def execute_shard_plan(task: ShardTask) -> ShardResult:
    """Run one shard sub-plan: fetch, align, filter; return the pieces.

    Fetches follow ``task.fetch_order`` (the parent scheduler's cost order
    restricted to this shard); the returned ``pieces`` list is in the
    task's assembly order, so the coordinator's merge stays bit-identical
    to serial execution.
    """
    _require_initialized()
    pieces: list[Table | None] = [None] * len(task.uris)
    receipts: list[tuple[str, str, int, float, dict | None]] = []
    schedule = task.fetch_order or tuple(range(len(task.uris)))
    columns = list(task.column_names)
    for index in schedule:
        _check_cancelled(task.cancel_path)
        chunk, receipt = _fetch_one(task.uris[index], task.table_name)
        receipts.append(receipt)
        piece = chunk.project(columns)
        if task.predicate is not None:
            mask = np.asarray(task.predicate.evaluate(piece), dtype=np.bool_)
            piece = piece.filter(mask)
        pieces[index] = piece
    return ShardResult(
        shard_id=_SHARD_ID,
        pieces=[piece for piece in pieces if piece is not None],
        receipts=receipts,
        kernel=_active_kernel(),
    )


def warm_chunk(
    uri: str, table_name: str
) -> tuple[str, str, int, float, dict | None]:
    """Prefetch path: pull one chunk into this shard's recycler.

    Returns the same receipt shape as plan execution so the parent can
    account the warm-up and adopt worker-computed statistics.
    """
    _require_initialized()
    _, receipt = _fetch_one(uri, table_name)
    return receipt


def exit_now(code: int = 1) -> None:  # pragma: no cover - kills the process
    """Hard-exit the worker (crash-injection hook for tests)."""
    os._exit(code)
