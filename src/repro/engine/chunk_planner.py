"""The statistics-driven chunk planner and fetch scheduler.

Stage one of the two-stage model names the chunks a query *may* need; until
now the runtime rewrite turned that list into accesses in plain URI order
and fetched everything.  The :class:`ChunkPlanner` sits between the two:

1. **Prune** — each candidate chunk is tested against the per-chunk
   statistics of :class:`~repro.engine.chunk_stats.ChunkStatsCatalog`.
   A chunk whose min/max ranges (and, for the time attribute, per-segment
   zone map) cannot satisfy the query's literal bound conjuncts contributes
   no rows, so dropping it cannot change the result — the pushed predicate
   would have filtered every row anyway.
2. **Classify + cost** — surviving chunks are placed on the tier they will
   be served from (``resident`` in the recycler's memory tier <
   ``spilled`` mmap re-hydrate from the chunk store < ``remote``
   fetch + Steim decode) with an estimated cost in seconds.
3. **Schedule** — the fetch order starts the most expensive fetches first
   so remote latency overlaps cheap work; assembly order stays the given
   URI order so results are bit-identical to unscheduled execution.  The
   same :class:`ChunkPlan` drives the serial, thread and process executors,
   so all three fetch in the same order.

The planner is attached to the engine :class:`~repro.engine.database.
Database`; its cumulative counters feed ``repro cache`` and the pruning
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .predicates import (
    closed_int_bounds,
    literal_bounds_by_column,
    range_may_satisfy,
)
from ..util.lock_sanitizer import make_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database
    from .expressions import Expression

__all__ = ["PlannedChunk", "PrunedChunk", "ChunkPlan", "ChunkPlanner"]

# Tier labels, cheapest first; also the cost-model fallbacks (seconds).
TIER_RESIDENT = "resident"
TIER_SPILLED = "spilled"
TIER_REMOTE = "remote"
TIER_UNPLANNED = "unplanned"

# Cost model constants: a memory hit is free, an mmap re-hydrate pays a
# small fixed open cost plus page-in bandwidth, a remote fetch pays the
# loader's modeled latency plus the (observed or default) decode cost.
_REHYDRATE_BASE_SECONDS = 2e-4
_REHYDRATE_BYTES_PER_SECOND = 2e9
_DEFAULT_DECODE_SECONDS = 2e-3


@dataclass(frozen=True)
class PlannedChunk:
    """One chunk the scheduler will fetch: where from and at what cost."""

    uri: str
    tier: str
    cost_seconds: float


@dataclass(frozen=True)
class PrunedChunk:
    """One chunk statistics proved irrelevant, with the deciding column."""

    uri: str
    reason: str


@dataclass(frozen=True)
class ChunkPlan:
    """The scheduler's contract for one rewritten actual-data scan.

    ``chunks`` is in assembly (stage-one URI) order — result rows follow
    it, so execution stays bit-identical across executors and to the
    unplanned path.  ``fetch_order`` holds indexes into ``chunks`` in
    descending estimated cost: every executor issues fetches in this order.
    """

    table_name: str
    chunks: tuple[PlannedChunk, ...]
    pruned: tuple[PrunedChunk, ...] = ()
    fetch_order: tuple[int, ...] = ()

    @property
    def uris(self) -> tuple[str, ...]:
        return tuple(chunk.uri for chunk in self.chunks)

    @property
    def total_cost_seconds(self) -> float:
        return sum(chunk.cost_seconds for chunk in self.chunks)

    def tier_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for chunk in self.chunks:
            counts[chunk.tier] = counts.get(chunk.tier, 0) + 1
        return counts

    @classmethod
    def trivial(cls, uris: Sequence[str], table_name: str) -> "ChunkPlan":
        """An unplanned wrapper for callers that only have a URI list."""
        chunks = tuple(
            PlannedChunk(uri=uri, tier=TIER_UNPLANNED, cost_seconds=0.0)
            for uri in uris
        )
        return cls(
            table_name=table_name,
            chunks=chunks,
            fetch_order=tuple(range(len(chunks))),
        )

    def describe(self) -> str:
        """Multi-line rendering for ``repro explain`` and debugging."""
        lines = [
            f"chunk plan for {self.table_name}: {len(self.chunks)} to fetch, "
            f"{len(self.pruned)} pruned, "
            f"~{self.total_cost_seconds * 1000:.2f}ms estimated"
        ]
        for position, index in enumerate(self.fetch_order):
            chunk = self.chunks[index]
            lines.append(
                f"  [{position:02d}] {chunk.tier:<9} "
                f"{chunk.cost_seconds * 1000:8.3f}ms  {chunk.uri}"
            )
        for pruned in self.pruned:
            lines.append(f"  [--] pruned ({pruned.reason})  {pruned.uri}")
        return "\n".join(lines)


@dataclass
class PlannerStats:
    """Cumulative counters (``repro cache`` and the pruning benchmark)."""

    plans_built: int = 0
    chunks_considered: int = 0
    chunks_pruned: int = 0
    chunks_scheduled: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "plans_built": self.plans_built,
            "chunks_considered": self.chunks_considered,
            "chunks_pruned": self.chunks_pruned,
            "chunks_scheduled": self.chunks_scheduled,
        }


class ChunkPlanner:
    """Builds :class:`ChunkPlan` objects against one database's state."""

    def __init__(self, database: "Database") -> None:
        self.database = database
        self.stats = PlannerStats()
        self._lock = make_lock("ChunkPlanner._lock")

    # -- planning ----------------------------------------------------------

    def plan(
        self,
        uris: Sequence[str],
        table_name: str,
        predicate: "Expression | None" = None,
        prune: bool = True,
    ) -> ChunkPlan:
        """Prune, classify and schedule the given candidate chunks."""
        bounds = literal_bounds_by_column(predicate) if prune else {}
        catalog = self.database.chunk_stats
        cached = self.database.recycler.cached_uris()
        store = self.database.chunk_store
        stored = store.uris() if store is not None else set()

        kept: list[PlannedChunk] = []
        pruned: list[PrunedChunk] = []
        default_decode = self._default_decode_seconds(catalog)
        fetch_delay = self._fetch_delay_seconds()
        for uri in uris:
            stats = catalog.get(uri)
            reason = self._prune_reason(stats, bounds) if bounds else None
            if reason is not None:
                pruned.append(PrunedChunk(uri=uri, reason=reason))
                continue
            kept.append(
                self._classify(
                    uri, stats, cached, stored, store,
                    default_decode, fetch_delay,
                )
            )
        # Most expensive first; ties broken by assembly position so the
        # schedule is deterministic for equal-cost chunks.
        fetch_order = tuple(
            sorted(
                range(len(kept)),
                key=lambda i: (-kept[i].cost_seconds, i),
            )
        )
        with self._lock:
            self.stats.plans_built += 1
            self.stats.chunks_considered += len(uris)
            self.stats.chunks_pruned += len(pruned)
            self.stats.chunks_scheduled += len(kept)
        return ChunkPlan(
            table_name=table_name,
            chunks=tuple(kept),
            pruned=tuple(pruned),
            fetch_order=fetch_order,
        )

    def stats_snapshot(self) -> dict[str, int]:
        with self._lock:
            return self.stats.as_dict()

    # -- pruning -----------------------------------------------------------

    @staticmethod
    def _prune_reason(stats, bounds: dict) -> str | None:
        """The column whose statistics exclude this chunk, or None.

        Chunks without statistics (or without a range for the bounded
        column) always survive: pruning only ever acts on known-true
        bounds.  Value columns gain ranges only after the first full
        decode; time/id columns have them from registration.
        """
        if stats is None:
            return None
        for column, ops in bounds.items():
            column_range = stats.ranges.get(column)
            if column_range is not None:
                minimum, maximum = column_range
                for op, value in ops:
                    if not range_may_satisfy(op, value, minimum, maximum):
                        return column
            zones = stats.segment_zones
            if zones is not None and zones.attribute == column:
                low, high = closed_int_bounds(ops)
                if (low is not None or high is not None) and not (
                    zones.prune_range(low, high)
                ):
                    # Sub-chunk granularity: the query's window falls
                    # entirely into gaps between this chunk's segments.
                    return f"{column} (segment zones)"
        return None

    # -- classification and cost -------------------------------------------

    def _classify(
        self, uri, stats, cached, stored, store, default_decode, fetch_delay
    ) -> PlannedChunk:
        if uri in cached:
            return PlannedChunk(uri=uri, tier=TIER_RESIDENT, cost_seconds=0.0)
        if uri in stored:
            payload = store.payload_nbytes(uri) if store is not None else 0
            cost = _REHYDRATE_BASE_SECONDS + payload / _REHYDRATE_BYTES_PER_SECOND
            return PlannedChunk(uri=uri, tier=TIER_SPILLED, cost_seconds=cost)
        decode = default_decode
        if stats is not None and stats.loading_cost is not None:
            decode = stats.loading_cost
        return PlannedChunk(
            uri=uri, tier=TIER_REMOTE, cost_seconds=fetch_delay + decode
        )

    @staticmethod
    def _default_decode_seconds(catalog) -> float:
        """Average observed decode cost (O(1)), or the model default."""
        average = catalog.average_loading_cost()
        return _DEFAULT_DECODE_SECONDS if average is None else average

    def _fetch_delay_seconds(self) -> float:
        loader = self.database.chunk_loader
        delay_ms = getattr(loader, "io_delay_ms", 0.0) if loader else 0.0
        return float(delay_ms) / 1000.0
