"""The Database object: catalog + storage + caches + chunk loading.

A :class:`Database` is the engine-level façade that physical operators talk
to.  It owns:

* the :class:`~repro.engine.catalog.Catalog` (tables, views, constraints);
* a :class:`~repro.engine.storage.BufferPool` and
  :class:`~repro.engine.storage.PagedColumnStore` for tables persisted to
  disk (the eager variants page their big actual-data table so scans pay
  realistic I/O costs, reproducing the paper's memory cliff);
* the :class:`~repro.engine.recycler.Recycler` caching lazily loaded chunks;
* hash and join indexes built by the ``eager_index`` loading variant;
* a pluggable :class:`ChunkLoader` that knows how to extract one chunk of an
  external file repository into table rows (realized by the mseed reader).

Scans return tables with *qualified* column names (``F.station``) plus the
hidden ``<T>.#rowid`` column used by join indexes.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Protocol, Sequence

import numpy as np

from .catalog import Catalog
from .chunk_planner import ChunkPlanner
from .chunk_stats import ChunkStatsCatalog
from .chunk_store import ChunkStore
from .column import Column
from .errors import CatalogError, ExecutionError
from .indexes import HashIndex, JoinIndex
from .recycler import Recycler
from .shared_scan import SharedScanScheduler
from .storage import BufferPool, PagedColumnStore
from .table import Field, Schema, Table
from .types import INT64
from ..util.lock_sanitizer import make_lock

__all__ = ["ChunkLoader", "Database", "qualify_chunk"]

ROWID = "#rowid"


def qualify_chunk(raw: Table, table_name: str) -> Table:
    """Turn unqualified chunk rows into the engine's scan-shaped table.

    Column names gain the ``table.`` prefix and a hidden rowid column of -1
    (chunk rows are synthetic: they have no stable base-table position).
    Shared by :meth:`Database.load_chunk` and the process-pool decode
    workers so both produce byte-identical chunk tables.
    """
    qualified = raw.with_prefix(table_name)
    rowids = Column(INT64, np.full(raw.num_rows, -1, dtype=np.int64))
    fields = list(qualified.schema.fields)
    fields.append(Field(f"{table_name}.{ROWID}", INT64))
    return Table(Schema(fields), list(qualified.columns) + [rowids])


class ChunkLoader(Protocol):
    """Strategy for ingesting one external chunk (file) into table rows.

    Implementations return rows with *unqualified* column names matching the
    target base table's schema.  ``load`` must be pure with respect to the
    repository: loading the same URI twice yields the same rows.

    Loaders may additionally implement ``load_range(uri, table_name,
    start_ms, end_ms)`` for in-situ selective access (NoDB-style single
    chunk accessors, paper Section VII); the engine probes for it with
    ``hasattr``.
    """

    def load(self, uri: str, table_name: str) -> Table:  # pragma: no cover
        ...


class Database:
    """One database instance (the unit every loading approach prepares)."""

    # Machine-checked (repro analyze, lock-discipline / blocking-under-lock):
    # executor handles and their size watermarks swap only under their lock,
    # and nothing slow may run while one of these locks is held.
    _GUARDED = {
        "_io_executor_lock": ("_io_executor", "_io_executor_workers"),
        "_process_executor_lock": (
            "_process_executor",
            "_process_executor_workers",
        ),
        "_shard_lock": ("shard_coordinator",),
        "_load_accounting_lock": ("chunk_seconds_total",),
    }

    def __init__(
        self,
        name: str = "repro",
        workdir: str | None = None,
        buffer_pool_bytes: int = 256 * 1024 * 1024,
        recycler_bytes: int = 1 << 30,
        recycler_policy: str = "lru",
        page_rows: int = 8192,
        spill_chunks: bool = True,
    ) -> None:
        self.name = name
        self.catalog = Catalog()
        self.buffer_pool = BufferPool(buffer_pool_bytes)
        if workdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix=f"repro-{name}-")
            workdir = self._tempdir.name
        else:
            self._tempdir = None
            os.makedirs(workdir, exist_ok=True)
        self.workdir = workdir
        # The persistent disk tier of the recycler: evicted decoded chunks
        # spill here as mmap-able columnar files, and a database reopened
        # over the same workdir comes back warm.
        self.chunk_store: ChunkStore | None = (
            ChunkStore(os.path.join(workdir, "chunks")) if spill_chunks else None
        )
        self.recycler = Recycler(
            recycler_bytes, policy=recycler_policy, store=self.chunk_store
        )
        self.paged_store = PagedColumnStore(
            os.path.join(workdir, "pages"), self.buffer_pool, page_rows
        )
        self.chunk_loader: ChunkLoader | None = None
        # Per-chunk min/max statistics (seeded from headers at registration,
        # enriched at first decode) and the planner that prunes and
        # cost-orders stage-two chunk fetches against them.
        self.chunk_stats = ChunkStatsCatalog()
        self.chunk_planner = ChunkPlanner(self)
        # Cooperative scan passes: concurrent queries whose chunk plans
        # overlap share materialization when the plan node asks for it
        # (TwoStageOptions(shared_scan=True)).
        self.shared_scans = SharedScanScheduler(self)
        self.hash_indexes: dict[tuple[str, tuple[str, ...]], HashIndex] = {}
        self.join_indexes: list[JoinIndex] = []
        # Cumulative seconds spent decoding chunks, for loading-cost reports.
        self.chunk_seconds_total = 0.0
        # Chunk access strategy: 'full' decodes whole chunks (cacheable);
        # 'in_situ' decodes only the sub-chunk a pushed time predicate needs
        # (the NoDB-style accessor, Section VII).  ``in_situ_time_columns``
        # maps actual-data tables to their time attribute (qualified name),
        # configured by the schema layer.
        self.chunk_access_strategy = "full"
        self.in_situ_time_columns: dict[str, str] = {}
        # Shared chunk-I/O thread pool for the morsel-style stage-two
        # pipeline; created lazily, sized by the largest request so far.
        # Outgrown pools stay alive until close() — callers may still hold
        # references and submit to them.
        self._io_executor: ThreadPoolExecutor | None = None
        self._io_executor_workers = 0
        self._retired_io_executors: list[ThreadPoolExecutor] = []
        self._io_executor_lock = make_lock("Database._io_executor_lock")
        # Process pool for the GIL-free stage two: workers decode chunks
        # and commit them to the shared chunk store; the parent mmaps them
        # back.  Created lazily (spawn context), invalidated whenever the
        # chunk loader changes (workers hold a pickled snapshot of it).
        self._process_executor: ProcessPoolExecutor | None = None
        self._process_executor_workers = 0
        self._retired_process_executors: list[ProcessPoolExecutor] = []
        self._process_executor_lock = make_lock("Database._process_executor_lock")
        self._load_accounting_lock = make_lock("Database._load_accounting_lock")
        # Scatter-gather coordinator for sharded stage two: created on the
        # first sharded scan (or on reopen of a sharded checkpoint) and
        # rebuilt when the requested shard count changes.
        self.shard_coordinator = None
        self._shard_lock = make_lock("Database._shard_lock")

    # -- scanning -----------------------------------------------------------

    def qualified_schema(self, table_name: str) -> Schema:
        """The scan output schema of a base table (qualified + rowid)."""
        base = self.catalog.table(table_name)
        fields = list(base.schema.with_prefix(table_name).fields)
        fields.append(Field(f"{table_name}.{ROWID}", INT64))
        return Schema(fields)

    def scan_base_table(self, table_name: str) -> Table:
        """Materialize a base table with qualified names and rowids.

        Paged tables are read through the buffer pool (cold scans hit disk);
        in-memory tables are shared without copying.
        """
        base = self.catalog.table(table_name)
        if base.paged and self.paged_store.has_table(table_name):
            image = self.paged_store.read_table(table_name)
        else:
            image = base.data
        qualified = image.with_prefix(table_name)
        rowids = Column(INT64, np.arange(image.num_rows, dtype=np.int64))
        return Table(
            self.qualified_schema(table_name),
            list(qualified.columns) + [rowids],
        )

    # -- mutation -------------------------------------------------------------

    def insert(self, table_name: str, rows: Table) -> None:
        """Append rows; keeps paged image and hash indexes in sync."""
        base = self.catalog.table(table_name)
        if base.paged:
            image = self.paged_store.read_table(table_name)
            start_row = image.num_rows
            self.paged_store.store_table(table_name, image.concat(rows))
        else:
            start_row = base.num_rows
            base.append(rows)
        for (indexed_table, _), index in self.hash_indexes.items():
            if indexed_table == table_name:
                index.extend(rows, start_row)

    def replace(self, table_name: str, rows: Table) -> None:
        """Replace a table's contents wholesale."""
        base = self.catalog.table(table_name)
        if base.paged:
            if rows.schema.names != base.schema.names:
                raise CatalogError(f"replace on {table_name!r}: schema mismatch")
            self.paged_store.store_table(table_name, rows)
        else:
            base.replace(rows)
        for (indexed_table, _), index in self.hash_indexes.items():
            if indexed_table == table_name:
                index.build(rows)

    def page_out(self, table_name: str) -> int:
        """Persist a table to paged storage and mark it disk-resident.

        Returns the bytes written.  After this, scans stream through the
        buffer pool; the in-memory image is released.
        """
        base = self.catalog.table(table_name)
        written = self.paged_store.store_table(table_name, base.data)
        base.paged = True
        base.data = Table.empty(base.schema)
        return written

    def drop_caches(self) -> None:
        """Simulate a server restart: cold buffer pool, cold recycler."""
        self.buffer_pool.clear()
        self.recycler.clear()

    # -- chunk loading ------------------------------------------------------------

    def set_chunk_loader(self, loader: ChunkLoader) -> None:
        self.chunk_loader = loader
        # Any live process pool holds a pickled snapshot of the old loader.
        self.reset_process_executor()
        with self._shard_lock:
            if self.shard_coordinator is not None:
                self.shard_coordinator.reset_pools()

    def io_executor(self, threads: int) -> ThreadPoolExecutor:
        """The shared chunk-I/O pool, grown to at least ``threads`` workers.

        One pool serves every concurrent query on this database so total
        decode parallelism stays bounded regardless of client count.
        """
        threads = max(1, threads)
        with self._io_executor_lock:
            if self._io_executor is None or self._io_executor_workers < threads:
                if self._io_executor is not None:
                    # Never shut a pool down while other queries may still
                    # hold it — retire it and reap on close().
                    self._retired_io_executors.append(self._io_executor)
                self._io_executor = ThreadPoolExecutor(
                    max_workers=threads,
                    thread_name_prefix=f"repro-io-{self.name}",
                )
                self._io_executor_workers = threads
            return self._io_executor

    def process_executor(self, workers: int) -> ProcessPoolExecutor:
        """The shared decode process pool, grown to at least ``workers``.

        Workers are initialized with a pickled snapshot of the chunk loader
        and the chunk-store root (spawn context: safe in threaded parents).
        They decode chunks and commit them to the store; the parent mmaps
        the results back, so decoded samples never cross the process
        boundary by pickling.
        """
        if self.chunk_store is None:
            raise ExecutionError(
                "process-based stage two requires the chunk store "
                "(Database(spill_chunks=True))"
            )
        if self.chunk_loader is None:
            raise ExecutionError(
                "no chunk loader installed; register a repository first"
            )
        from . import chunk_worker

        workers = max(1, workers)
        with self._process_executor_lock:
            if (
                self._process_executor is None
                or self._process_executor_workers < workers
            ):
                if self._process_executor is not None:
                    self._retire_process_executor(self._process_executor)
                self._process_executor = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=chunk_worker.initialize_worker,
                    initargs=(self.chunk_loader, self.chunk_store.root),
                )
                self._process_executor_workers = workers
            return self._process_executor

    def sharding(self, shards: int, bucket_ms: int | None = None):
        """The scatter-gather coordinator for ``shards`` shard workers.

        Created lazily; asking for a different shard count (or bucket
        width) rebuilds the coordinator and bumps its ``layout_epoch`` so
        layout-dependent bookkeeping upstream (result cache, prefetcher
        warmed set) knows to invalidate.  Shard stores live under
        ``<workdir>/shards/`` and survive coordinator rebuilds.
        """
        from .sharding import DEFAULT_BUCKET_MS, ScatterGatherCoordinator

        shards = int(shards)
        if shards < 1:
            raise ExecutionError("sharded execution needs at least one shard")
        wanted_bucket = int(bucket_ms) if bucket_ms else DEFAULT_BUCKET_MS
        with self._shard_lock:
            coordinator = self.shard_coordinator
            if (
                coordinator is None
                or coordinator.shards != shards
                or coordinator.layout.bucket_ms != wanted_bucket
            ):
                epoch = 1
                if coordinator is not None:
                    epoch = coordinator.layout_epoch + 1
                    coordinator.close()
                coordinator = ScatterGatherCoordinator(
                    self, shards, bucket_ms=wanted_bucket
                )
                coordinator.layout_epoch = epoch
                self.shard_coordinator = coordinator
            return coordinator

    def _retire_process_executor(self, pool: ProcessPoolExecutor) -> None:
        # Caller holds self._process_executor_lock.  Unlike retired thread
        # pools, a retired process pool is shut down immediately: in-flight
        # futures still complete, but idle spawned workers (a whole
        # interpreter each) exit instead of lingering until close().
        pool.shutdown(wait=False)
        self._retired_process_executors.append(pool)

    def reset_process_executor(self) -> None:
        """Retire the decode pool (the loader snapshot it holds is stale)."""
        with self._process_executor_lock:
            if self._process_executor is not None:
                self._retire_process_executor(self._process_executor)
                self._process_executor = None
                self._process_executor_workers = 0

    def warm_process_executor(self, workers: int) -> None:
        """Spin up ``workers`` decode processes ahead of the first query.

        Spawned workers pay an import cost on first use; steady-state
        serving (and honest benchmarking of decode speed) wants that paid
        up front.
        """
        from . import chunk_worker

        pool = self.process_executor(workers)
        list(pool.map(chunk_worker.worker_ready, range(max(1, workers))))

    def account_chunk_seconds(self, seconds: float) -> None:
        """Fold decode time observed off the main path into the totals."""
        with self._load_accounting_lock:
            self.chunk_seconds_total += seconds

    def load_chunk(self, uri: str, table_name: str) -> tuple[Table, float]:
        """Extract, transform and qualify one chunk (the chunk-access op).

        Returns the qualified rows and the wall-clock seconds the extraction
        took (used by the recycler's cost-aware policy and the reports).
        """
        if self.chunk_loader is None:
            raise ExecutionError(
                "no chunk loader installed; register a repository first"
            )
        started = time.perf_counter()
        raw = self.chunk_loader.load(uri, table_name)
        elapsed = time.perf_counter() - started
        self.account_chunk_seconds(elapsed)
        base = self.catalog.table(table_name)
        if raw.schema.names != base.schema.names:
            raise ExecutionError(
                f"chunk loader returned schema {raw.schema.names} for "
                f"{table_name!r}, expected {base.schema.names}"
            )
        qualified = qualify_chunk(raw, table_name)
        self.chunk_stats.observe_table(uri, qualified, loading_cost=elapsed)
        return qualified, elapsed

    def adopt_store_stats(self) -> int:
        """Recover decode-derived chunk statistics from store sidecars.

        Called when reopening a persistent workdir: every committed chunk
        carries its exact numeric ranges in the manifest, so a restarted
        database can prune by value without re-decoding anything.  Returns
        the number of chunks adopted.
        """
        if self.chunk_store is None:
            return 0
        adopted = 0
        for uri in sorted(self.chunk_store.uris()):
            if self.chunk_stats.is_enriched(uri):
                continue
            ranges = self.chunk_store.get_stats(uri)
            if ranges is None:
                continue
            self.chunk_stats.adopt_persisted(
                uri, ranges,
                loading_cost=self.chunk_store.loading_cost(uri),
            )
            adopted += 1
        return adopted

    def load_chunk_range(
        self, uri: str, table_name: str, start_ms: int | None,
        end_ms: int | None,
    ) -> tuple[Table, float] | None:
        """In-situ selective chunk access: decode only a time window.

        Returns None when the installed loader has no in-situ capability,
        in which case callers fall back to :meth:`load_chunk`.
        """
        loader = self.chunk_loader
        if loader is None or not hasattr(loader, "load_range"):
            return None
        started = time.perf_counter()
        raw = loader.load_range(uri, table_name, start_ms, end_ms)
        elapsed = time.perf_counter() - started
        self.account_chunk_seconds(elapsed)
        return qualify_chunk(raw, table_name), elapsed

    # -- indexes -------------------------------------------------------------------

    def build_primary_key_indexes(self) -> float:
        """Build hash indexes for every declared primary key; returns seconds."""
        started = time.perf_counter()
        for base in self.catalog.tables():
            if not base.primary_key:
                continue
            index = HashIndex(base.name, base.primary_key)
            index.build(base.data if not base.paged else self._paged_image(base.name))
            self.hash_indexes[(base.name, tuple(base.primary_key))] = index
        return time.perf_counter() - started

    def build_foreign_key_indexes(self) -> float:
        """Build FK→PK join indexes for every declared constraint."""
        started = time.perf_counter()
        for base in self.catalog.tables():
            for constraint in base.foreign_keys:
                join_index = JoinIndex(
                    base.name,
                    constraint.columns,
                    constraint.ref_table,
                    constraint.ref_columns,
                )
                fk_image = (
                    base.data if not base.paged else self._paged_image(base.name)
                )
                ref = self.catalog.table(constraint.ref_table)
                pk_image = (
                    ref.data if not ref.paged else self._paged_image(ref.name)
                )
                join_index.build(fk_image, pk_image)
                self.join_indexes.append(join_index)
        return time.perf_counter() - started

    def _paged_image(self, table_name: str) -> Table:
        return self.paged_store.read_table(table_name)

    def find_join_index_for(
        self, pairs: Sequence[tuple[str, str]]
    ) -> tuple[JoinIndex, bool] | None:
        """Find a join index whose qualified keys equal the given equi pairs.

        Returns ``(index, fk_on_left)`` or None.  ``pairs`` hold qualified
        names with the left plan input first.
        """
        wanted = frozenset(pairs)
        for join_index in self.join_indexes:
            fk_qualified = [
                f"{join_index.fk_table}.{c}" for c in join_index.fk_columns
            ]
            pk_qualified = [
                f"{join_index.pk_table}.{c}" for c in join_index.pk_columns
            ]
            fk_left = frozenset(zip(fk_qualified, pk_qualified))
            fk_right = frozenset(zip(pk_qualified, fk_qualified))
            if wanted == fk_left:
                return join_index, True
            if wanted == fk_right:
                return join_index, False
        return None

    def index_nbytes(self) -> int:
        """Total footprint of all indexes (Table III's ``+keys`` delta)."""
        total = sum(ix.nbytes for ix in self.hash_indexes.values())
        total += sum(ix.nbytes for ix in self.join_indexes)
        return total

    # -- sizing ---------------------------------------------------------------------

    def table_num_rows(self, table_name: str) -> int:
        """Row count regardless of residency (in-memory or paged)."""
        base = self.catalog.table(table_name)
        if base.paged and self.paged_store.has_table(table_name):
            return self.paged_store.num_rows(table_name)
        return base.num_rows

    def table_nbytes(self, table_name: str) -> int:
        base = self.catalog.table(table_name)
        if base.paged:
            return self.paged_store.table_nbytes(table_name)
        return base.data.nbytes

    def database_nbytes(self) -> int:
        """Total stored bytes across all base tables."""
        return sum(self.table_nbytes(t.name) for t in self.catalog.tables())

    def metadata_nbytes(self) -> int:
        """Bytes of red (GMd + DMd) tables only — Table III's Lazy column."""
        return sum(
            self.table_nbytes(t.name)
            for t in self.catalog.tables()
            if t.kind.is_red
        )

    def cache_accounting(self) -> dict[str, int]:
        """Where cached bytes live: heap vs mmap vs disk, per component.

        ``recycler_resident`` is what the recycler budget charges;
        ``recycler_mapped`` is mmap-backed volume whose pages belong to the
        chunk-store files (counted once, under ``chunk_store``, on disk).
        """
        return {
            "buffer_pool": self.buffer_pool.bytes_cached,
            "recycler_resident": self.recycler.bytes_cached,
            "recycler_mapped": self.recycler.bytes_mapped,
            "chunk_store": (
                self.chunk_store.nbytes if self.chunk_store is not None else 0
            ),
        }

    @property
    def persistent(self) -> bool:
        """Whether the workdir outlives this object (caller-provided)."""
        return self._tempdir is None

    def close(self) -> None:
        # Detach everything under the locks, then tear it down outside
        # them: shutdown(wait=True) joins worker threads/processes, and a
        # worker that re-enters this database (chunk accounting, store
        # commits) must never find close() still holding an executor lock.
        with self._shard_lock:
            coordinator = self.shard_coordinator
            self.shard_coordinator = None
        if coordinator is not None:
            coordinator.close()
        with self._process_executor_lock:
            doomed_processes = list(self._retired_process_executors)
            self._retired_process_executors.clear()
            active_process = self._process_executor
            self._process_executor = None
            self._process_executor_workers = 0
        for retired in doomed_processes:
            retired.shutdown(wait=False)
        if active_process is not None:
            active_process.shutdown(wait=True)
        with self._io_executor_lock:
            doomed_pools = list(self._retired_io_executors)
            self._retired_io_executors.clear()
            active_pool = self._io_executor
            self._io_executor = None
            self._io_executor_workers = 0
        for retired in doomed_pools:
            retired.shutdown(wait=False)
        if active_pool is not None:
            active_pool.shutdown(wait=True)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
