"""Database catalog: base tables, views, constraints, and data *kinds*.

The paper partitions the schema ``T = M ∪ A`` into metadata tables (GMd),
actual-data tables (AD), plus derived-metadata tables (DMd) that act as
partially materialized views (Sections II-III).  The catalog records that
classification (:class:`TableKind`) because the whole two-stage execution
model — which tables are red vs. black in the join graph, which scans get
rewritten at run time — is driven by it.

Base tables always keep an authoritative in-memory :class:`Table`; tables
can additionally be *paged* to disk so scans pay buffer-pool costs (see
:mod:`repro.engine.storage`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Iterable, Sequence

from .errors import CatalogError
from .table import Schema, Table

__all__ = ["TableKind", "ForeignKey", "BaseTable", "ViewDefinition", "Catalog"]


class TableKind(enum.Enum):
    """Classification of a base table per the paper's Section III schema."""

    METADATA = "metadata"  # GMd: loaded eagerly by the Registrar
    ACTUAL = "actual"  # AD: loaded lazily per chunk
    DERIVED = "derived"  # DMd: incrementally materialized views

    @property
    def is_red(self) -> bool:
        """Red vertices of the query graph are metadata of either flavour."""
        return self in (TableKind.METADATA, TableKind.DERIVED)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint (also the blueprint for a join index)."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise CatalogError("foreign key column count mismatch")


@dataclass
class BaseTable:
    """Catalog entry for a base relation."""

    name: str
    schema: Schema
    kind: TableKind
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    data: Table = dataclass_field(default=None)  # type: ignore[assignment]
    paged: bool = False

    def __post_init__(self) -> None:
        if self.data is None:
            self.data = Table.empty(self.schema)
        for key_column in self.primary_key:
            if not self.schema.has(key_column):
                raise CatalogError(
                    f"primary key column {key_column!r} not in table {self.name!r}"
                )
        for foreign_key in self.foreign_keys:
            for key_column in foreign_key.columns:
                if not self.schema.has(key_column):
                    raise CatalogError(
                        f"foreign key column {key_column!r} not in "
                        f"table {self.name!r}"
                    )

    @property
    def num_rows(self) -> int:
        return self.data.num_rows

    def append(self, rows: Table) -> None:
        """Append rows (schema-checked) to the in-memory image."""
        if rows.schema.names != self.schema.names:
            raise CatalogError(
                f"append to {self.name!r}: column names differ "
                f"({rows.schema.names} vs {self.schema.names})"
            )
        self.data = self.data.concat(rows)

    def replace(self, rows: Table) -> None:
        """Replace the entire in-memory image."""
        if rows.schema.names != self.schema.names:
            raise CatalogError(f"replace on {self.name!r}: schema mismatch")
        self.data = rows

    def truncate(self) -> None:
        self.data = Table.empty(self.schema)


@dataclass(frozen=True)
class ViewDefinition:
    """A non-materialized view: a name bound to a logical plan factory.

    The factory is invoked at bind time so each query gets a fresh plan tree
    it may rewrite destructively.  ``windowdataview`` and ``dataview`` of the
    paper are registered this way.
    """

    name: str
    plan_factory: Callable[[], object]
    description: str = ""


class Catalog:
    """Name → object directory for one database."""

    def __init__(self) -> None:
        self._tables: dict[str, BaseTable] = {}
        self._views: dict[str, ViewDefinition] = {}

    # -- tables --------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        kind: TableKind,
        primary_key: Sequence[str] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> BaseTable:
        if name in self._tables or name in self._views:
            raise CatalogError(f"catalog object {name!r} already exists")
        entry = BaseTable(
            name=name,
            schema=schema,
            kind=kind,
            primary_key=tuple(primary_key),
            foreign_keys=tuple(foreign_keys),
        )
        self._tables[name] = entry
        return entry

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> BaseTable:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def tables(self) -> list[BaseTable]:
        return list(self._tables.values())

    def tables_of_kind(self, kind: TableKind) -> list[BaseTable]:
        return [t for t in self._tables.values() if t.kind is kind]

    def metadata_table_names(self) -> set[str]:
        """Names of all red tables (GMd and DMd)."""
        return {t.name for t in self._tables.values() if t.kind.is_red}

    def actual_table_names(self) -> set[str]:
        return {
            t.name for t in self._tables.values() if t.kind is TableKind.ACTUAL
        }

    # -- views ----------------------------------------------------------------

    def create_view(
        self,
        name: str,
        plan_factory: Callable[[], object],
        description: str = "",
    ) -> ViewDefinition:
        if name in self._views or name in self._tables:
            raise CatalogError(f"catalog object {name!r} already exists")
        view = ViewDefinition(name, plan_factory, description)
        self._views[name] = view
        return view

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> ViewDefinition:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"unknown view {name!r}") from None

    def views(self) -> list[ViewDefinition]:
        return list(self._views.values())

    # -- introspection ----------------------------------------------------------

    def total_nbytes(self) -> int:
        """In-memory footprint of all base-table images."""
        return sum(t.data.nbytes for t in self._tables.values())

    def describe(self) -> str:
        """Human-readable catalog summary (used by examples)."""
        lines = []
        for table in self._tables.values():
            lines.append(
                f"table {table.name} [{table.kind.value}] "
                f"rows={table.num_rows} cols={len(table.schema)}"
            )
        for view in self._views.values():
            lines.append(f"view  {view.name}: {view.description}")
        return "\n".join(lines)
