"""Index structures: hash primary-key indexes, FK join indexes, zonemaps.

The *eager index* loading variant of the paper builds primary and foreign
key indexes after loading; foreign-key indexes double as join indexes (the
paper: "constructing the join index is actually computing the join itself",
Section VI-C).  A :class:`JoinIndex` therefore materializes, for every row of
the referencing table, the row id of its match in the referenced table — a
hash join using it degenerates to a positional gather.

:class:`ZoneMap` implements the per-chunk min/max summaries mentioned in the
related-work discussion; we use them for the sub-chunk-granularity extension
(segment skipping inside a loaded chunk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .column import Column
from .errors import CatalogError
from .table import Table

__all__ = ["HashIndex", "JoinIndex", "ZoneMap", "composite_key_codes"]


def composite_key_codes(columns: Sequence[Column]) -> np.ndarray:
    """Encode a multi-column key as a single int64 code array.

    Values are factorized per column and combined positionally; codes are
    only comparable within the arrays produced by a single call, so callers
    encoding build and probe sides together must pass them concatenated.
    """
    if not columns:
        raise CatalogError("composite key requires at least one column")
    length = len(columns[0])
    codes = np.zeros(length, dtype=np.int64)
    for column in columns:
        values = column.values
        if values.dtype == object:
            mapping: dict[Any, int] = {}
            local = np.empty(length, dtype=np.int64)
            for i, value in enumerate(values):
                local[i] = mapping.setdefault(value, len(mapping))
            cardinality = max(len(mapping), 1)
        else:
            uniques, local = np.unique(values, return_inverse=True)
            cardinality = max(len(uniques), 1)
        codes = codes * np.int64(cardinality) + local.astype(np.int64)
    return codes


class HashIndex:
    """A hash map from key tuples to row ids of one table.

    Used to enforce primary keys (uniqueness) and to answer point lookups in
    the partial-view covering test of Algorithm 1.
    """

    def __init__(self, table_name: str, key_columns: Sequence[str]) -> None:
        if not key_columns:
            raise CatalogError("hash index requires at least one key column")
        self.table_name = table_name
        self.key_columns = tuple(key_columns)
        self._map: dict[tuple, list[int]] = {}
        self._rows_indexed = 0

    @property
    def num_keys(self) -> int:
        return len(self._map)

    @property
    def rows_indexed(self) -> int:
        return self._rows_indexed

    def build(self, table: Table) -> None:
        """(Re)build from scratch over the given table image."""
        self._map.clear()
        self._rows_indexed = 0
        self.extend(table, 0)

    def extend(self, table: Table, base_row: int) -> None:
        """Index additional rows whose ids start at ``base_row``."""
        key_cols = [table.column(name) for name in self.key_columns]
        for offset in range(table.num_rows):
            key = tuple(col[offset] for col in key_cols)
            self._map.setdefault(key, []).append(base_row + offset)
        self._rows_indexed += table.num_rows

    def lookup(self, key: tuple) -> list[int]:
        """Row ids matching the key (empty list when absent)."""
        return self._map.get(key, [])

    def contains(self, key: tuple) -> bool:
        return key in self._map

    def is_unique(self) -> bool:
        """True when no key maps to more than one row."""
        return all(len(rows) == 1 for rows in self._map.values())

    @property
    def nbytes(self) -> int:
        """Rough footprint estimate used for Table III (+keys column)."""
        # dict overhead per entry + key tuple + row-id list: a coarse model
        # comparable in spirit to MonetDB's hash index accounting.
        per_entry = 96
        return per_entry * len(self._map) + 8 * self._rows_indexed


class JoinIndex:
    """Precomputed FK → PK row-id mapping (a materialized join).

    ``positions[i]`` is the row id in the referenced table matching row ``i``
    of the referencing table, or -1 when the FK value dangles.  Queries that
    join along the constraint replace the hash join with a gather.
    """

    def __init__(
        self,
        fk_table: str,
        fk_columns: Sequence[str],
        pk_table: str,
        pk_columns: Sequence[str],
    ) -> None:
        if len(fk_columns) != len(pk_columns):
            raise CatalogError("join index key arity mismatch")
        self.fk_table = fk_table
        self.fk_columns = tuple(fk_columns)
        self.pk_table = pk_table
        self.pk_columns = tuple(pk_columns)
        self.positions = np.empty(0, dtype=np.int64)

    def build(self, fk_data: Table, pk_data: Table) -> None:
        """Compute the FK→PK positions (i.e. evaluate the join once)."""
        from .hashjoin import composite_codes_pair, equi_join_pairs

        positions = np.full(fk_data.num_rows, -1, dtype=np.int64)
        if fk_data.num_rows and pk_data.num_rows:
            fk_cols = [fk_data.column(name) for name in self.fk_columns]
            pk_cols = [pk_data.column(name) for name in self.pk_columns]
            fk_codes, pk_codes = composite_codes_pair(fk_cols, pk_cols)
            fk_rows, pk_rows = equi_join_pairs(fk_codes, pk_codes)
            positions[fk_rows] = pk_rows
        self.positions = positions

    @property
    def num_rows(self) -> int:
        return len(self.positions)

    @property
    def nbytes(self) -> int:
        return int(self.positions.nbytes)

    def matched_mask(self) -> np.ndarray:
        return self.positions >= 0

    def gather(self, pk_data: Table) -> Table:
        """The referenced-side rows aligned with the referencing table."""
        matched = self.positions[self.positions >= 0]
        return pk_data.take(matched)


@dataclass(frozen=True)
class ZoneEntry:
    """Min/max summary of one zone (chunk or segment)."""

    zone_id: Any
    minimum: Any
    maximum: Any

    def may_contain_range(self, low: Any | None, high: Any | None) -> bool:
        """Can any value in [low, high] fall inside this zone?"""
        if low is not None and self.maximum < low:
            return False
        if high is not None and self.minimum > high:
            return False
        return True


class ZoneMap:
    """Per-zone min/max summaries over one attribute.

    A zone is an arbitrary caller-defined unit — a chunk file or a segment
    within one.  ``prune_range`` returns only the zones a range predicate
    could touch; the lazy loader uses this to skip whole segments.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._entries: list[ZoneEntry] = []

    def add_zone(self, zone_id: Any, minimum: Any, maximum: Any) -> None:
        if minimum > maximum:
            raise CatalogError("zone minimum exceeds maximum")
        self._entries.append(ZoneEntry(zone_id, minimum, maximum))

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[ZoneEntry]:
        return list(self._entries)

    def prune_range(self, low: Any | None, high: Any | None) -> list[Any]:
        """Zone ids that may contain values in the inclusive range."""
        return [
            entry.zone_id
            for entry in self._entries
            if entry.may_contain_range(low, high)
        ]

    def prune_point(self, value: Any) -> list[Any]:
        return self.prune_range(value, value)
