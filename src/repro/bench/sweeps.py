"""Selectivity-sweep experiments: Figures 8 and 9 (Sections VI-D, VI-E).

Both use the FIAM dataset — the single-station repository whose data is
uniformly distributed over its time span, so a time-range predicate's
selectivity is proportional to the range length.
"""

from __future__ import annotations

from ..core.sommelier import SommelierDB
from ..workloads.generator import WorkloadSpec, generate_workload, selectivity_range
from ..workloads.queries import QUERY_BUILDERS, QueryParams
from .experiments import ExperimentContext, T5_MAX_VAL, T5_STD_DEV
from .reporting import ReportTable, format_seconds
from .timing import time_call

__all__ = ["run_fig8", "run_fig9", "FIG8_APPROACHES"]

FIG8_APPROACHES = ("eager_dmd", "eager_index", "eager_plain", "lazy")

# Paper (Fig. 9): per query type, lazy is compared against the best of the
# three eager approaches for that type.
BEST_EAGER_FOR = {"T2": "eager_dmd", "T3": "eager_dmd", "T4": "eager_index",
                  "T5": "eager_dmd"}


def _fiam_query(query_type: str, start_ms: int, end_ms: int) -> str:
    builder = QUERY_BUILDERS[query_type]
    return builder(
        QueryParams(
            station="FIAM",
            channel="HHZ",
            start_ms=start_ms,
            end_ms=end_ms,
            max_val_threshold=T5_MAX_VAL,
            std_dev_threshold=T5_STD_DEV,
        )
    )


def _reset_to_post_preparation(db: SommelierDB, approach: str) -> None:
    """Restore a cached database to its state right after preparation."""
    db.drop_caches()
    if approach != "eager_dmd":
        db.reset_derived_metadata()


def run_fig8(ctx: ExperimentContext) -> ReportTable:
    """Figure 8: data-to-insight time vs query selectivity.

    Data-to-insight = preparation time + first query time.  The 0% point is
    preparation alone.  Measured on the FIAM dataset at the profile's
    fig8 scale factors, for T4 and T5 (T2/T3 mirror T5 per the paper).
    """
    table = ReportTable(
        f"Figure 8 — data-to-insight vs query selectivity "
        f"(profile={ctx.profile.name}, FIAM dataset)",
        ["query", "sf", "approach", "selectivity", "prep", "first query",
         "data-to-insight"],
    )
    for query_type in ctx.profile.fig8_query_types:
        for sf in ctx.profile.fig8_scale_factors:
            span = ctx.span(sf)
            for approach in FIG8_APPROACHES:
                entry = ctx.prepared(approach, sf, fiam_only=True)
                prep_seconds = entry.report.total_seconds
                for selectivity in ctx.profile.fig8_selectivities:
                    if selectivity == 0.0:
                        table.add_row(
                            query_type, f"sf-{sf}", approach, "0%",
                            format_seconds(prep_seconds), "-",
                            format_seconds(prep_seconds),
                        )
                        continue
                    start, end = selectivity_range(span, selectivity)
                    sql = _fiam_query(query_type, start, end)
                    _reset_to_post_preparation(entry.db, approach)
                    first_query = time_call(lambda: entry.db.query(sql))
                    table.add_row(
                        query_type,
                        f"sf-{sf}",
                        approach,
                        f"{selectivity:.0%}",
                        format_seconds(prep_seconds),
                        format_seconds(first_query),
                        format_seconds(prep_seconds + first_query),
                    )
    table.add_note(
        "shapes to hold: lazy grows with selectivity yet stays below "
        "eager_index/eager_dmd even at 100%; eager curves are flat in "
        "selectivity (their cost is the preparation)"
    )
    return table


def run_fig9(ctx: ExperimentContext) -> ReportTable:
    """Figure 9: cumulative workload time vs workload selectivity.

    Workloads of N queries with fixed 2.5% query selectivity, uniformly
    placed over the leading ``workload selectivity`` fraction of the data
    span.  Lazy is compared against the best eager approach per query type;
    cumulative time includes preparation (the paper's 0% point).
    """
    table = ReportTable(
        f"Figure 9 — workload performance (profile={ctx.profile.name}, "
        "FIAM dataset)",
        ["query", "sf", "approach", "workload sel", "#queries", "prep",
         "queries", "cumulative"],
    )
    for query_type in ctx.profile.fig9_query_types:
        approaches = ("lazy", BEST_EAGER_FOR[query_type])
        for sf in ctx.profile.fig9_scale_factors:
            span = ctx.span(sf)
            for approach in approaches:
                entry = ctx.prepared(approach, sf, fiam_only=True)
                prep_seconds = entry.report.total_seconds
                for num_queries in ctx.profile.fig9_num_queries:
                    for selectivity in ctx.profile.fig9_selectivities:
                        if selectivity == 0.0:
                            table.add_row(
                                query_type, f"sf-{sf}", approach, "0%",
                                num_queries, format_seconds(prep_seconds),
                                "-", format_seconds(prep_seconds),
                            )
                            continue
                        spec = WorkloadSpec(
                            query_type=query_type,
                            num_queries=num_queries,
                            query_selectivity=min(
                                ctx.profile.fig9_query_selectivity,
                                selectivity,
                            ),
                            workload_selectivity=selectivity,
                        )
                        queries = generate_workload(spec, span)
                        _reset_to_post_preparation(entry.db, approach)
                        total = 0.0
                        for sql in queries:
                            total += time_call(lambda: entry.db.query(sql))
                        table.add_row(
                            query_type,
                            f"sf-{sf}",
                            approach,
                            f"{selectivity:.0%}",
                            num_queries,
                            format_seconds(prep_seconds),
                            format_seconds(total),
                            format_seconds(prep_seconds + total),
                        )
    table.add_note(
        "shapes to hold: lazy wins clearly at low workload selectivity "
        "(~5x at 20% on the largest sf); eager flat in selectivity; more "
        "queries narrow lazy's advantage on small scale factors"
    )
    return table
