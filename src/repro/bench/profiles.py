"""Benchmark profiles: how much of the paper's parameter space to sweep.

The paper ran on a 32-thread Xeon with 256 GB RAM against up to 1.2 TB of
mSEED; a laptop reproduction needs knobs.  Three profiles:

* ``quick`` (default) — minutes-scale; coarse selectivity grids, smaller
  repositories.  Shapes are already visible.
* ``small`` — the paper's full selectivity grids at reduced data volume.
* ``paper`` — paper-exact file counts (160/484/1464/4384 chunks); hours.

Selected via the ``REPRO_BENCH_PROFILE`` environment variable.

The buffer-pool budget is sized so that the eager database's actual-data
table fits in the pool for sf-1/sf-3 but not for sf-9/sf-27, reproducing
the paper's memory cliff at the same relative position.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..data.ingv import RepoScale

__all__ = ["BenchProfile", "PROFILES", "active_profile", "BENCH_SCALES"]

# Scale names embed the parameters so on-disk repository caches are keyed
# correctly when presets change.
BENCH_SCALES = {
    "quick": RepoScale("bq-d20-s17k", day_divisor=20, samples_per_day=17280,
                       min_segments=4, max_segments=8),
    "small": RepoScale("bs-d10-s17k", day_divisor=10, samples_per_day=17280,
                       min_segments=4, max_segments=8),
    "paper": RepoScale("bp-d1-s86k", day_divisor=1, samples_per_day=86400,
                       min_segments=8, max_segments=16),
}


@dataclass(frozen=True)
class BenchProfile:
    """One sweep configuration."""

    name: str
    scale: RepoScale
    scale_factors: tuple[int, ...]
    buffer_pool_bytes: int
    recycler_bytes: int
    query_runs: int  # cold/hot averaging runs (paper: 3)
    fig7_approaches: tuple[str, ...]
    fig8_selectivities: tuple[float, ...]
    fig8_scale_factors: tuple[int, ...]
    fig8_query_types: tuple[str, ...]
    fig9_selectivities: tuple[float, ...]
    fig9_num_queries: tuple[int, ...]
    fig9_scale_factors: tuple[int, ...]
    fig9_query_types: tuple[str, ...]
    fig9_query_selectivity: float = 0.025  # paper: fixed 2.5%


PROFILES = {
    "quick": BenchProfile(
        name="quick",
        scale=BENCH_SCALES["quick"],
        scale_factors=(1, 3, 9, 27),
        buffer_pool_bytes=12 * 1024 * 1024,
        recycler_bytes=1 << 30,
        query_runs=2,
        fig7_approaches=("eager_plain", "eager_index", "eager_dmd", "lazy"),
        fig8_selectivities=(0.0, 0.2, 0.6, 1.0),
        fig8_scale_factors=(1, 27),
        fig8_query_types=("T4", "T5"),
        fig9_selectivities=(0.0, 0.2, 0.6, 1.0),
        fig9_num_queries=(25, 50),
        fig9_scale_factors=(1, 27),
        fig9_query_types=("T3", "T4"),
    ),
    "small": BenchProfile(
        name="small",
        scale=BENCH_SCALES["small"],
        scale_factors=(1, 3, 9, 27),
        buffer_pool_bytes=24 * 1024 * 1024,
        recycler_bytes=1 << 30,
        query_runs=3,
        fig7_approaches=("eager_plain", "eager_index", "eager_dmd", "lazy"),
        fig8_selectivities=(0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        fig8_scale_factors=(1, 27),
        fig8_query_types=("T4", "T5"),
        fig9_selectivities=(0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        fig9_num_queries=(100, 200),
        fig9_scale_factors=(1, 27),
        fig9_query_types=("T3", "T4"),
    ),
    "paper": BenchProfile(
        name="paper",
        scale=BENCH_SCALES["paper"],
        scale_factors=(1, 3, 9, 27),
        buffer_pool_bytes=256 * 1024 * 1024,
        recycler_bytes=2 << 30,
        query_runs=3,
        fig7_approaches=("eager_plain", "eager_index", "eager_dmd", "lazy"),
        fig8_selectivities=(0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        fig8_scale_factors=(1, 27),
        fig8_query_types=("T4", "T5"),
        fig9_selectivities=(0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        fig9_num_queries=(100, 200),
        fig9_scale_factors=(1, 27),
        fig9_query_types=("T3", "T4"),
    ),
}


def active_profile() -> BenchProfile:
    """The profile named by REPRO_BENCH_PROFILE (default: quick)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_BENCH_PROFILE {name!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None
