"""Timing protocol helpers for the evaluation harness.

The paper reports, per query, a *cold* upper bound ("right after restarting
the server with all buffers flushed") and a *hot* lower bound ("with all
buffers pre-loaded by running the same query multiple times"), each averaged
over three runs (Section VI-A).  :func:`measure_cold_hot` reproduces that
protocol against a :class:`~repro.core.sommelier.SommelierDB`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..core.sommelier import SommelierDB

__all__ = ["ColdHotTiming", "measure_cold_hot", "time_call"]

PAPER_RUNS = 3


@dataclass(frozen=True)
class ColdHotTiming:
    """Cold and hot seconds for one query on one prepared database."""

    cold_seconds: float
    hot_seconds: float


def time_call(fn: Callable[[], object]) -> float:
    """Wall-clock one call."""
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def measure_cold_hot(
    db: SommelierDB, sql: str, runs: int = PAPER_RUNS
) -> ColdHotTiming:
    """The paper's protocol: cold = after cache flush; hot = repeated runs.

    Cold runs flush the buffer pool and the recycler before each
    measurement; the derived-metadata view is *not* reset (its state is
    part of the database, like in the paper).  Hot times average the last
    ``runs`` of ``runs + 1`` back-to-back executions.
    """
    cold_total = 0.0
    for _ in range(runs):
        db.drop_caches()
        cold_total += time_call(lambda: db.query(sql))
    db.query(sql)  # warm up once more
    hot_total = 0.0
    for _ in range(runs):
        hot_total += time_call(lambda: db.query(sql))
    return ColdHotTiming(cold_total / runs, hot_total / runs)
