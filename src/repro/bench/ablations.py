"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's own figures:

* **rule-set ablation** — the paper argues its rule set is *minimal* ("for
  each rule there is a query that requires this rule to avoid loading
  unnecessary data"); we disable rules (and the time-bound inference) and
  count the chunks a T4/T5 query loads.
* **recycler policy ablation** — Section VIII's "smarter caching": LRU vs
  the cost-aware policy under a tight cache budget.
* **chunk-access strategy ablation** — Section VII: a NoDB-style in-situ
  selective accessor vs the full-load accessor for a single chunk.
"""

from __future__ import annotations

import time

from ..core.coloring import RuleSet
from ..core.two_stage import TwoStageOptions
from ..mseed import reader
from ..workloads.generator import WorkloadSpec, generate_workload
from ..workloads.queries import QUERY_BUILDERS
from .experiments import ExperimentContext
from .reporting import ReportTable, format_seconds

__all__ = [
    "run_ablation_rules",
    "run_ablation_recycler",
    "run_ablation_chunk_access",
]


def run_ablation_rules(ctx: ExperimentContext) -> ReportTable:
    """Chunks loaded by a T4/T5 query with optimizer features disabled."""
    table = ReportTable(
        f"Ablation — join-order rules & inference "
        f"(profile={ctx.profile.name})",
        ["query", "variant", "chunks required", "chunks loaded", "seconds"],
    )
    sf = ctx.profile.scale_factors[-1]
    params = ctx.query_params(sf, station="FIAM", channel="HHZ")
    variants = [
        ("full rule set", TwoStageOptions()),
        ("no R2 (cross products)", TwoStageOptions(
            rules=RuleSet.disabled("r2"))),
        ("no R4 (black last)", TwoStageOptions(
            rules=RuleSet.disabled("r4"))),
        ("no time-bound inference", TwoStageOptions(
            infer_time_bounds=False)),
    ]
    for query_type in ("T4", "T5"):
        sql = QUERY_BUILDERS[query_type](params)
        for label, options in variants:
            entry = ctx.prepared("lazy", sf, options=options)
            entry.db.drop_caches()
            entry.db.reset_derived_metadata()
            started = time.perf_counter()
            result = entry.db.query(sql)
            elapsed = time.perf_counter() - started
            table.add_row(
                query_type,
                label,
                len(result.rewrite.required_uris),
                result.stats.chunks_loaded,
                format_seconds(elapsed),
            )
    table.add_note(
        "disabling the inference (and, where the graph needs it, R2) must "
        "not change answers but loads more chunks — the minimality claim"
    )
    return table


def run_ablation_recycler(ctx: ExperimentContext) -> ReportTable:
    """LRU vs cost-aware recycler under a tight budget (Section VIII)."""
    table = ReportTable(
        f"Ablation — recycler replacement policy "
        f"(profile={ctx.profile.name}, FIAM dataset)",
        ["policy", "budget", "chunk loads", "cache hits", "seconds"],
    )
    sf = ctx.profile.fig9_scale_factors[-1]
    span = ctx.span(sf)
    spec = WorkloadSpec(
        query_type="T4",
        num_queries=min(ctx.profile.fig9_num_queries),
        query_selectivity=0.05,
        workload_selectivity=0.3,
        seed=7,
    )
    queries = generate_workload(spec, span)
    repository, _ = ctx.repository(sf, fiam_only=True)
    # Budget sized to hold only a handful of decoded chunks.
    sample_entry = ctx.prepared("lazy", sf, fiam_only=True)
    chunk_bytes = max(
        sample_entry.report.repo_bytes
        // max(sample_entry.report.num_files, 1),
        1,
    ) * 40  # decoded rows are ~an order of magnitude larger than a chunk
    budget = chunk_bytes * 3
    from ..core.loading import prepare

    for policy in ("lru", "cost_aware"):
        db, _ = prepare("lazy", repository, recycler_bytes=budget)
        db.database.recycler.policy = policy
        # This ablation compares replacement policies by how often they
        # force a re-decode; spilling evictions to the disk tier would
        # turn every re-decode into a cheap re-hydrate and erase the
        # difference being measured.
        db.database.recycler.spill_on_evict = False
        started = time.perf_counter()
        loads = 0
        for sql in queries:
            loads += db.query(sql).stats.chunks_loaded
        elapsed = time.perf_counter() - started
        table.add_row(
            policy,
            budget,
            loads,
            db.database.recycler.stats.hits,
            format_seconds(elapsed),
        )
        db.close()
    return table


def run_ablation_chunk_access(ctx: ExperimentContext) -> ReportTable:
    """Full-load vs in-situ selective decode of single chunks (Section VII)."""
    table = ReportTable(
        f"Ablation — chunk access strategy (profile={ctx.profile.name})",
        ["strategy", "window", "segments decoded", "rows", "seconds"],
    )
    repository, _ = ctx.repository(ctx.profile.scale_factors[0])
    chunk = repository.list_chunks()[0]
    meta = reader.read_metadata(chunk.uri)
    span_start = meta.segments[0].start_time_ms
    span_end = max(s.end_time_ms for s in meta.segments)
    quarter = span_start + (span_end - span_start) // 4

    def measure(label, window, fn):
        started = time.perf_counter()
        segments = fn()
        elapsed = time.perf_counter() - started
        rows = sum(len(s.values) for s in segments)
        table.add_row(label, window, len(segments), rows,
                      format_seconds(elapsed))

    for _ in range(3):  # repeat so timing is not a single cold I/O artifact
        measure("full load", "whole chunk",
                lambda: reader.read_samples(chunk.uri))
        measure(
            "in-situ range",
            "first quarter",
            lambda: reader.read_samples_in_range(
                chunk.uri, span_start, quarter
            ),
        )
    table.add_note(
        "the in-situ accessor decodes only overlapping segments — the "
        "sub-chunk granularity the paper calls orthogonal and complementary"
    )
    return table
