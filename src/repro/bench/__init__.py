"""Benchmark harness: experiment runners for every table and figure.

``run_table2``/``run_table3`` regenerate the dataset tables; ``run_fig6``
through ``run_fig9`` regenerate the evaluation figures; the ``ablation``
runners cover the design-choice experiments DESIGN.md adds.  All runners
take an :class:`ExperimentContext` built from a :class:`BenchProfile`
(selected via ``REPRO_BENCH_PROFILE``: quick / small / paper).
"""

from .ablations import (
    run_ablation_chunk_access,
    run_ablation_recycler,
    run_ablation_rules,
)
from .experiments import ExperimentContext, run_fig6, run_fig7, run_table2, run_table3
from .profiles import BenchProfile, PROFILES, active_profile
from .reporting import ReportTable, format_bytes, format_seconds, results_dir
from .sweeps import run_fig8, run_fig9
from .timing import ColdHotTiming, measure_cold_hot, time_call

__all__ = [
    "BenchProfile",
    "ColdHotTiming",
    "ExperimentContext",
    "PROFILES",
    "ReportTable",
    "active_profile",
    "format_bytes",
    "format_seconds",
    "measure_cold_hot",
    "results_dir",
    "run_ablation_chunk_access",
    "run_ablation_recycler",
    "run_ablation_rules",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table2",
    "run_table3",
    "time_call",
]
