"""Paper-style plain-text reporting for the benchmark harness.

Every experiment produces a :class:`ReportTable` that renders the same rows
or series the paper's tables/figures show, and is written both to stdout and
to ``bench_results/<experiment>.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ReportTable", "format_seconds", "format_bytes", "results_dir"]


def results_dir(root: str | None = None) -> str:
    """The directory where experiment reports are written."""
    base = root or os.environ.get("REPRO_BENCH_RESULTS", "bench_results")
    os.makedirs(base, exist_ok=True)
    return base


def format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}TB"  # pragma: no cover


@dataclass
class ReportTable:
    """A titled, aligned text table."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.headers)}"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def add_metadata(self, **entries: Any) -> None:
        """Attach experiment-specific keys to the JSON artifact."""
        self.metadata.update(entries)

    def render(self) -> str:
        cells = [[str(h) for h in self.headers]]
        cells += [[_render_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(
            cells[0][i].ljust(widths[i]) for i in range(len(widths))
        )
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in cells[1:]:
            lines.append(
                "  ".join(row[i].ljust(widths[i]) for i in range(len(widths)))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """The machine-readable shape of this table (CI artifacts).

        Every artifact carries host metadata — scaling results (clients ×
        io_threads, shared scans) are meaningless without the core count
        they ran on.
        """
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "metadata": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                **self.metadata,
            },
        }

    def save(self, filename: str, root: str | None = None) -> str:
        path = os.path.join(results_dir(root), filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        return path

    def save_json(self, filename: str, root: str | None = None) -> str:
        """Persist the JSON shape next to the text report."""
        path = os.path.join(results_dir(root), filename)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, default=str)
            handle.write("\n")
        return path

    def emit(self, filename: str, root: str | None = None) -> str:
        """Print to stdout and persist; returns the saved path."""
        text = self.render()
        print("\n" + text)
        return self.save(filename, root)


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
