"""Experiment runners for the paper's tables and figures (Section VI).

Each ``run_*`` function regenerates one artifact of the evaluation as a
:class:`~repro.bench.reporting.ReportTable` whose rows mirror what the
paper reports.  The :class:`ExperimentContext` caches built repositories
and prepared databases so one benchmark session prepares each
(approach, scale factor, dataset) combination at most once.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass

from ..core.loading import LoadReport, prepare
from ..core.sommelier import SommelierDB
from ..core.two_stage import TwoStageOptions
from ..data.ingv import EPOCH_2010_MS, build_or_reuse
from ..workloads.generator import TimeSpan
from ..workloads.queries import QUERY_BUILDERS, QueryParams
from .profiles import BenchProfile, active_profile
from .reporting import ReportTable, format_bytes, format_seconds
from .timing import time_call

__all__ = [
    "ExperimentContext",
    "run_table2",
    "run_table3",
    "run_fig6",
    "run_fig7",
    "FIG6_APPROACHES",
    "FIG6_BUCKETS",
]

MILLIS_PER_DAY = 24 * 3600 * 1000

FIG6_APPROACHES = ("eager_csv", "eager_plain", "eager_index", "eager_dmd",
                   "lazy")
FIG6_BUCKETS = ("mseed_to_csv", "csv_to_db", "mseed_to_db", "metadata",
                "indexing", "dmd")

# Fixed thresholds for the T5/T2 window predicates: low enough that the
# synthetic event amplitudes qualify a healthy fraction of windows.
T5_MAX_VAL = 1000.0
T5_STD_DEV = 10.0


@dataclass(frozen=True)
class PreparedEntry:
    db: SommelierDB
    report: LoadReport


class ExperimentContext:
    """Shared state for one benchmark session.

    Repositories are built under ``base_dir`` (reused across sessions if the
    directory persists); prepared databases live in a temporary directory
    removed on :meth:`close`.
    """

    def __init__(
        self,
        profile: BenchProfile | None = None,
        base_dir: str | None = None,
    ) -> None:
        self.profile = profile or active_profile()
        self.base_dir = base_dir or os.environ.get(
            "REPRO_BENCH_DATA", os.path.join(tempfile.gettempdir(),
                                             "repro-bench-data")
        )
        os.makedirs(self.base_dir, exist_ok=True)
        self._workdir = tempfile.mkdtemp(prefix="repro-bench-db-")
        self._prepared: dict[tuple, PreparedEntry] = {}
        self._db_counter = 0

    # -- data ----------------------------------------------------------------

    def repository(self, scale_factor: int, fiam_only: bool = False):
        """Build (or reuse) the dataset for one scale factor."""
        return build_or_reuse(
            self.base_dir, scale_factor, self.profile.scale, fiam_only
        )

    def span(self, scale_factor: int) -> TimeSpan:
        """The time extent of a dataset at this profile's scale."""
        days = self.profile.scale.days_for_sf(scale_factor)
        return TimeSpan(
            EPOCH_2010_MS, EPOCH_2010_MS + days * MILLIS_PER_DAY
        )

    # -- prepared databases -------------------------------------------------------

    def prepared(
        self,
        approach: str,
        scale_factor: int,
        fiam_only: bool = False,
        fresh: bool = False,
        options: TwoStageOptions | None = None,
    ) -> PreparedEntry:
        """A database prepared with ``approach`` (cached unless ``fresh``)."""
        key = (approach, scale_factor, fiam_only, options)
        if not fresh and key in self._prepared:
            return self._prepared[key]
        repository, _ = self.repository(scale_factor, fiam_only)
        self._db_counter += 1
        kwargs = {
            "workdir": os.path.join(self._workdir, f"db{self._db_counter}"),
            "buffer_pool_bytes": self.profile.buffer_pool_bytes,
            "recycler_bytes": self.profile.recycler_bytes,
        }
        if options is not None:
            kwargs["options"] = options
        db, report = prepare(approach, repository, **kwargs)
        entry = PreparedEntry(db, report)
        if not fresh:
            self._prepared[key] = entry
        return entry

    def query_params(
        self, scale_factor: int, station: str = "ISK", channel: str = "BHE"
    ) -> QueryParams:
        """The paper's fixed single-query shape: 2 days from one station.

        When a dataset has fewer than 2 days, the whole span is used.
        """
        days = min(2, self.profile.scale.days_for_sf(scale_factor))
        return QueryParams(
            station=station,
            channel=channel,
            start_ms=EPOCH_2010_MS,
            end_ms=EPOCH_2010_MS + days * MILLIS_PER_DAY,
            max_val_threshold=T5_MAX_VAL,
            std_dev_threshold=T5_STD_DEV,
        )

    def close(self) -> None:
        for entry in self._prepared.values():
            entry.db.close()
        self._prepared.clear()
        shutil.rmtree(self._workdir, ignore_errors=True)


# -- Table II -----------------------------------------------------------------------

PAPER_TABLE2 = {
    1: (160, 2009, 1_273_454_901),
    3: (484, 7802, 3_929_151_193),
    9: (1464, 12566, 11_912_163_036),
    27: (4384, 74526, 33_683_711_338),
}


def run_table2(ctx: ExperimentContext) -> ReportTable:
    """Table II: dataset characteristics per scale factor."""
    table = ReportTable(
        f"Table II — INGV dataset (profile={ctx.profile.name})",
        ["sf", "files", "segments", "data records", "paper files",
         "paper segments", "paper records"],
    )
    for sf in ctx.profile.scale_factors:
        _, stats = ctx.repository(sf)
        paper = PAPER_TABLE2[sf]
        table.add_row(
            f"sf-{sf}",
            stats.num_files,
            stats.num_segments,
            stats.num_samples,
            paper[0],
            paper[1],
            paper[2],
        )
    table.add_note(
        "file count = 4 stations × days; day counts scale the paper's "
        f"40/121/366/1096 by 1/{ctx.profile.scale.day_divisor}"
    )
    return table


# -- Table III ----------------------------------------------------------------------

PAPER_TABLE3 = {
    1: ("1.3 GB", "45.5 GB", "23.7 GB", "18.9 GB", "1.3 MB"),
    3: ("4.1 GB", "139 GB", "73.1 GB", "58.5 GB", "1.7 MB"),
    9: ("12.3 GB", "429 GB", "222 GB", "176 GB", "2.1 MB"),
    27: ("36.0 GB", "1.2 TB", "627 GB", "502 GB", "6.3 MB"),
}


def run_table3(ctx: ExperimentContext) -> ReportTable:
    """Table III: size characteristics per scale factor.

    Columns follow the paper: raw chunk repository (mSEED), generated CSV,
    database after plain load, index (+keys) overhead, and the metadata-only
    footprint of the Lazy approach.
    """
    table = ReportTable(
        f"Table III — dataset sizes (profile={ctx.profile.name})",
        ["sf", "mSEED", "CSV", "DB", "+keys", "Lazy", "paper mSEED",
         "paper CSV", "paper DB", "paper +keys", "paper Lazy"],
    )
    for sf in ctx.profile.scale_factors:
        csv_entry = ctx.prepared("eager_csv", sf)
        index_entry = ctx.prepared("eager_index", sf)
        lazy_entry = ctx.prepared("lazy", sf)
        paper = PAPER_TABLE3[sf]
        table.add_row(
            f"sf-{sf}",
            format_bytes(csv_entry.report.repo_bytes),
            format_bytes(csv_entry.report.csv_bytes),
            format_bytes(index_entry.report.db_bytes),
            format_bytes(index_entry.report.index_bytes),
            format_bytes(lazy_entry.report.metadata_bytes),
            *paper,
        )
    table.add_note(
        "shape to hold: CSV ≫ DB > mSEED ≫ Lazy (orders of magnitude)"
    )
    return table


# -- Figure 6 ----------------------------------------------------------------------


def run_fig6(ctx: ExperimentContext) -> ReportTable:
    """Figure 6: loading-cost breakdown, 5 approaches × scale factors."""
    table = ReportTable(
        f"Figure 6 — loading cost breakdown (profile={ctx.profile.name})",
        ["sf", "approach"] + [b for b in FIG6_BUCKETS] + ["total"],
    )
    for sf in ctx.profile.scale_factors:
        for approach in FIG6_APPROACHES:
            entry = ctx.prepared(approach, sf)
            buckets = [
                format_seconds(entry.report.bucket(b))
                if entry.report.bucket(b) > 0
                else "-"
                for b in FIG6_BUCKETS
            ]
            table.add_row(
                f"sf-{sf}",
                approach,
                *buckets,
                format_seconds(entry.report.total_seconds),
            )
    table.add_note(
        "shape to hold: lazy ≈ metadata-only, orders of magnitude below "
        "eager; eager_csv > eager_plain; indexing roughly doubles eager prep"
    )
    return table


# -- Figure 7 ----------------------------------------------------------------------


def run_fig7(
    ctx: ExperimentContext,
    query_types: tuple[str, ...] = ("T1", "T2", "T3", "T4", "T5"),
) -> ReportTable:
    """Figures 7a–7e: cold/hot single-query times per type × sf × approach.

    Follows the paper's protocol: the same 2-day/1-station query per type;
    cold = buffers flushed (and, for databases whose preparation did not
    include DMd, the derived view reset so every cold run pays the same
    derivation the paper's non-materializing eager variants pay); hot =
    repeated back-to-back runs.
    """
    table = ReportTable(
        f"Figure 7 — single query performance (profile={ctx.profile.name})",
        ["query", "sf", "approach", "cold", "hot"],
    )
    for query_type in query_types:
        builder = QUERY_BUILDERS[query_type]
        for sf in ctx.profile.scale_factors:
            params = ctx.query_params(sf)
            sql = builder(params)
            for approach in ctx.profile.fig7_approaches:
                entry = ctx.prepared(approach, sf)
                reset = approach != "eager_dmd" and query_type in (
                    "T2", "T3", "T5"
                )
                timing = _cold_hot_with_reset(
                    entry.db, sql, ctx.profile.query_runs, reset
                )
                table.add_row(
                    query_type,
                    f"sf-{sf}",
                    approach,
                    format_seconds(timing.cold_seconds),
                    format_seconds(timing.hot_seconds),
                )
    table.add_note(
        "shapes to hold: T1 flat everywhere; eager_dmd wins T2/T3 by orders "
        "of magnitude; lazy T4/T5 competitive and flat in sf; eager cold "
        "times climb with sf once data outgrows the buffer pool"
    )
    return table


def _cold_hot_with_reset(db: SommelierDB, sql: str, runs: int, reset: bool):
    """Cold/hot protocol, optionally resetting DMd before each cold run."""
    from .timing import ColdHotTiming

    cold_total = 0.0
    for _ in range(runs):
        if reset:
            db.reset_derived_metadata()
        db.drop_caches()
        cold_total += time_call(lambda: db.query(sql))
    db.query(sql)
    hot_total = 0.0
    for _ in range(runs):
        hot_total += time_call(lambda: db.query(sql))
    return ColdHotTiming(cold_total / runs, hot_total / runs)
