"""Query-type classification per the paper's Table I.

Queries are typed by which kinds of data they refer to::

    T1: GMd                 T2: DMd                T3: DMd & GMd
    T4: GMd & AD            T5: DMd & GMd & AD

("only AD" and "DMd & AD" are excluded by assumption — Section II-B: actual
data is always referred to together with given metadata.)

Classification runs over a *bound* plan: the base tables in its subtree are
looked up in the catalog and bucketed by :class:`TableKind`.
"""

from __future__ import annotations

import enum

from ..engine import algebra
from ..engine.catalog import Catalog, TableKind

__all__ = ["QueryType", "classify_plan", "references_derived_metadata"]


class QueryType(enum.Enum):
    T1 = "T1"  # GMd only
    T2 = "T2"  # DMd only
    T3 = "T3"  # DMd & GMd
    T4 = "T4"  # GMd & AD
    T5 = "T5"  # DMd & GMd & AD
    AD_ONLY = "AD"  # outside the paper's focus (Section II-B)
    DMD_AD = "DMd&AD"  # outside the paper's focus

    @property
    def refers_to_derived(self) -> bool:
        return self in (QueryType.T2, QueryType.T3, QueryType.T5,
                        QueryType.DMD_AD)

    @property
    def refers_to_actual(self) -> bool:
        return self in (QueryType.T4, QueryType.T5, QueryType.AD_ONLY,
                        QueryType.DMD_AD)


def classify_plan(plan: algebra.LogicalPlan, catalog: Catalog) -> QueryType:
    """Determine the Table-I type of a bound plan."""
    kinds: set[TableKind] = set()
    for table_name in plan.base_tables():
        if catalog.has_table(table_name):
            kinds.add(catalog.table(table_name).kind)
    has_gmd = TableKind.METADATA in kinds
    has_dmd = TableKind.DERIVED in kinds
    has_ad = TableKind.ACTUAL in kinds
    if has_ad and has_dmd and has_gmd:
        return QueryType.T5
    if has_ad and has_gmd:
        return QueryType.T4
    if has_ad and has_dmd:
        return QueryType.DMD_AD
    if has_ad:
        return QueryType.AD_ONLY
    if has_dmd and has_gmd:
        return QueryType.T3
    if has_dmd:
        return QueryType.T2
    return QueryType.T1


def references_derived_metadata(
    plan: algebra.LogicalPlan, catalog: Catalog
) -> bool:
    """Algorithm 1, Step 1: does the query refer to any DMd table?"""
    return classify_plan(plan, catalog).refers_to_derived
