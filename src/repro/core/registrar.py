"""The Registrar: eager loading of given metadata (paper Section V-1).

When a file repository is registered, the Registrar iterates over all its
files, extracts the given metadata from the headers and bulk-loads it into
``F`` and ``S``.  Like MonetDB's implementation, extraction parallelizes
over files (a thread pool; header reads are I/O bound).

Actual data is *not* touched — this is the whole point.  The Registrar also
installs the :class:`XseedChunkLoader` so that ``chunk-access`` operators
can later ingest individual chunks on demand.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..engine.column import Column
from ..engine.database import Database
from ..engine.errors import ExecutionError
from ..engine.indexes import ZoneMap
from ..engine.table import Field, Schema, Table, TableBuilder
from ..engine.types import INT64, TIMESTAMP
from ..mseed import reader
from ..mseed.repository import FileRepository

# Unqualified schema of the rows a chunk contributes to table D.
_CHUNK_SCHEMA = Schema(
    [
        Field("file_id", INT64),
        Field("segment_no", INT64),
        Field("sample_time", TIMESTAMP),
        Field("sample_value", INT64),
    ]
)

__all__ = ["RegistrarReport", "XseedChunkLoader", "Registrar"]


@dataclass(frozen=True)
class RegistrarReport:
    """Outcome of registering one repository."""

    num_files: int
    num_segments: int
    seconds: float
    metadata_bytes: int


class XseedChunkLoader:
    """Chunk-access strategy: full decode of one xseed file into D rows.

    The loader owns the URI → file_id mapping established at registration
    time (file ids are system-generated, which is why the paper can drop
    FK verification for lazy loading: the keys are correct by construction).

    ``io_delay_ms`` models a remote repository (the paper's INGV archive
    sits on network storage): every chunk fetch blocks that long before
    decoding.  Like :meth:`Database.drop_caches` it is a measurement knob —
    concurrency benchmarks use it to reproduce the latency-bound serving
    regime on hardware where local files are page-cache warm.
    """

    def __init__(self, io_delay_ms: float = 0.0) -> None:
        self._file_ids: dict[str, int] = {}
        self.io_delay_ms = io_delay_ms

    def assign(self, uri: str, file_id: int) -> None:
        self._file_ids[uri] = file_id

    def file_id_of(self, uri: str) -> int:
        try:
            return self._file_ids[uri]
        except KeyError:
            raise ExecutionError(f"chunk {uri!r} was never registered") from None

    def load(self, uri: str, table_name: str) -> Table:
        if table_name != "D":
            raise ExecutionError(
                f"xseed chunks provide rows for table 'D', not {table_name!r}"
            )
        self.file_id_of(uri)  # unknown URIs fail before any file access
        self._simulate_fetch_latency()
        return self._build_rows(uri, reader.read_samples(uri))

    def load_range(
        self, uri: str, table_name: str, start_ms: int | None,
        end_ms: int | None,
    ) -> Table:
        """In-situ selective access: decode only overlapping segments."""
        if table_name != "D":
            raise ExecutionError(
                f"xseed chunks provide rows for table 'D', not {table_name!r}"
            )
        self.file_id_of(uri)
        self._simulate_fetch_latency()
        segments = reader.read_samples_in_range(uri, start_ms, end_ms)
        return self._build_rows(uri, segments)

    def _simulate_fetch_latency(self) -> None:
        if self.io_delay_ms > 0:
            time.sleep(self.io_delay_ms / 1000.0)

    def _build_rows(self, uri: str, segments) -> Table:
        file_id = self.file_id_of(uri)
        total = sum(len(s.values) for s in segments)
        file_ids = np.full(total, file_id, dtype=np.int64)
        segment_nos = np.empty(total, dtype=np.int64)
        times = np.empty(total, dtype=np.int64)
        values = np.empty(total, dtype=np.int64)
        cursor = 0
        for segment in segments:
            n = len(segment.values)
            segment_nos[cursor : cursor + n] = segment.header.segment_no
            times[cursor : cursor + n] = segment.times_ms
            values[cursor : cursor + n] = segment.values
            cursor += n
        return Table(
            _CHUNK_SCHEMA,
            [
                Column(INT64, file_ids),
                Column(INT64, segment_nos),
                Column(TIMESTAMP, times),
                Column(INT64, values),
            ],
        )


class Registrar:
    """Extracts and bulk-loads GMd for every chunk of a repository."""

    def __init__(self, database: Database, threads: int = 8) -> None:
        self.database = database
        self.threads = max(1, threads)

    def register(self, repository: FileRepository) -> RegistrarReport:
        """Scan all chunk headers and populate F and S.

        File ids are assigned in sorted-URI order starting after any
        already-registered files, so registering two repositories into one
        database is well-defined.
        """
        started = time.perf_counter()
        uris = [chunk.uri for chunk in repository.list_chunks()]
        if self.threads > 1 and len(uris) > 1:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                metadata = list(pool.map(reader.read_metadata, uris))
        else:
            metadata = [reader.read_metadata(uri) for uri in uris]

        loader = self._ensure_loader()
        next_file_id = self.database.table_num_rows("F")
        f_builder = TableBuilder(self.database.catalog.table("F").schema)
        s_builder = TableBuilder(self.database.catalog.table("S").schema)
        num_segments = 0
        for offset, (uri, file_meta) in enumerate(zip(uris, metadata)):
            file_id = next_file_id + offset
            loader.assign(uri, file_id)
            volume = file_meta.volume
            f_builder.append_row(
                (
                    file_id,
                    uri,
                    volume.network,
                    volume.station,
                    volume.location,
                    volume.channel,
                    volume.quality,
                    volume.encoding,
                    volume.byte_order,
                )
            )
            for segment in file_meta.segments:
                s_builder.append_row(
                    (
                        file_id,
                        segment.segment_no,
                        segment.start_time_ms,
                        segment.frequency,
                        segment.sample_count,
                    )
                )
                num_segments += 1
            self._record_chunk_stats(uri, file_id, file_meta)
        self.database.insert("F", f_builder.finish())
        self.database.insert("S", s_builder.finish())
        # Decode workers snapshot the loader at pool creation; the file ids
        # assigned above must be visible to the next pool.
        self.database.reset_process_executor()
        elapsed = time.perf_counter() - started
        return RegistrarReport(
            num_files=len(uris),
            num_segments=num_segments,
            seconds=elapsed,
            metadata_bytes=self.database.metadata_nbytes(),
        )

    def _record_chunk_stats(self, uri: str, file_id: int, file_meta) -> None:
        """Seed the chunk-statistics catalog from the headers just read.

        Header information yields *true bounds* without touching payloads:
        the chunk's time span (every sample of a segment lies in
        ``[start, end)``), its constant ``file_id`` and its segment-number
        range — plus a per-segment time zone map for sub-chunk pruning
        (a query window falling entirely into inter-segment gaps skips the
        whole chunk).  Value ranges stay unknown until the first decode.
        """
        segments = file_meta.segments
        if not segments:
            return
        ad_table = "D"
        time_column = self.database.in_situ_time_columns.get(
            ad_table, f"{ad_table}.sample_time"
        )
        zones = ZoneMap(time_column)
        for segment in segments:
            zones.add_zone(
                segment.segment_no,
                segment.start_time_ms,
                max(segment.start_time_ms, segment.end_time_ms - 1),
            )
        ranges = {
            time_column: (
                float(min(s.start_time_ms for s in segments)),
                float(max(s.end_time_ms for s in segments) - 1),
            ),
            f"{ad_table}.file_id": (float(file_id), float(file_id)),
            f"{ad_table}.segment_no": (
                float(min(s.segment_no for s in segments)),
                float(max(s.segment_no for s in segments)),
            ),
        }
        self.database.chunk_stats.record_registration(
            uri,
            ranges,
            num_rows=file_meta.total_samples,
            segment_zones=zones,
        )

    def _ensure_loader(self) -> XseedChunkLoader:
        loader = self.database.chunk_loader
        if not isinstance(loader, XseedChunkLoader):
            loader = XseedChunkLoader()
            self.database.set_chunk_loader(loader)
        return loader
