"""Workload-aware chunk prefetching — the sommelier recommending the
next bottle.

Serving workloads over a remote repository are latency-bound: every cold
chunk pays a network fetch plus a Steim decode at the moment a query needs
it.  But real sessions are not random — a client analysing a seismic event
walks forward through time, station by station.  The
:class:`WorkloadPrefetcher` exploits that: after every query it looks at
the chunks the session just touched, predicts the chunks that *follow
them in time* for the same instrument, and warms the recycler through the
shared I/O pool while the client is thinking.  A later query that needs a
prefetched chunk finds it resident (or, at worst, coalesces with the
in-flight prefetch through the recycler's single-flight slot — the work is
never duplicated).

Per-session history gates how aggressively we reach ahead: a session seen
moving forward through time repeatedly earns the full configured depth,
a fresh or jumping-around session only one chunk.  Everything here is
advisory — prefetching can only ever move load costs off the query path,
never change a result.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from ..util.lock_sanitizer import make_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database

__all__ = ["PrefetchStats", "WorkloadPrefetcher"]


@dataclass
class PrefetchStats:
    """Cumulative counters (``repro cache`` and the pruning benchmark)."""

    issued: int = 0
    completed: int = 0
    failed: int = 0
    hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "hits": self.hits,
        }


@dataclass
class _SessionHistory:
    """What a session did last, per (station, channel) group."""

    last_max_time: dict[tuple[str, str], float]
    forward_streak: int = 0


class WorkloadPrefetcher:
    """Predicts and warms the chunks a session is likely to need next."""

    # Machine-checked (repro analyze, lock-discipline / blocking-under-lock):
    # the successor index swaps atomically and no warm-up I/O runs under it.
    _GUARDED = {
        "_lock": (
            "_successors",
            "_chunk_time",
            "_chunk_group",
            "_indexed_files",
            "_futures",
        )
    }

    def __init__(
        self,
        database: "Database",
        table_name: str = "D",
        depth: int = 2,
        io_threads: int = 2,
        max_warmed: int = 1024,
    ) -> None:
        self.database = database
        self.table_name = table_name
        self.depth = max(1, depth)
        self.io_threads = max(1, io_threads)
        # Optional warming override ``(uri, table_name) -> None``: sharded
        # databases route warm-ups to the chunk's owning shard worker (the
        # parent recycler never serves sharded scans, so warming it would
        # waste memory without ever producing a hit).
        self.warm_via = None
        self.stats = PrefetchStats()
        self._lock = make_lock("WorkloadPrefetcher._lock")
        # Per-session history, bounded: long-running serving creates an
        # unbounded stream of session ids, so the least-recently-active
        # histories are evicted once the cap is reached.
        self._sessions: "OrderedDict[int, _SessionHistory]" = OrderedDict()
        self._max_sessions = 512
        # Warmed-URI bookkeeping, LRU-bounded like the session map: a URI
        # that is warmed but then planner-pruned by every later query
        # would otherwise sit in the set forever in a long-running server.
        # Values are unused; OrderedDict is the insertion-ordered LRU.
        self._warmed: "OrderedDict[str, None]" = OrderedDict()
        self._max_warmed = max(1, max_warmed)
        self._inflight: set[str] = set()
        self._futures: list[Future] = []
        # uri -> (successor uri, own start time, group key); rebuilt when
        # the registered file count changes.
        self._successors: dict[str, str] = {}
        self._chunk_time: dict[str, float] = {}
        self._chunk_group: dict[str, tuple[str, str]] = {}
        self._indexed_files = -1

    # -- the serving-path hooks --------------------------------------------

    def record_hits(
        self,
        required_uris: list[str],
        resident_uris: "list[str] | None" = None,
        loaded_uris: "list[str] | None" = None,
    ) -> int:
        """How many of a query's chunks a prefetch had warmed *and kept*.

        ``resident_uris`` is the set the query's chunk plan classified as
        recycler-resident — residency *when the plan was made*, not now:
        by the time this runs, the query itself has re-loaded anything
        evicted, so probing the recycler after the fact would count cold
        loads as hits.  ``loaded_uris`` is what the plan sent to the
        loader: only those are dropped from the warmed set (the warm copy
        is provably gone), so a chunk the planner *pruned* while it sits
        warm in the cache is neither a hit nor forgotten.  Callers without
        a plan (tests, ad-hoc use) omit both and get a live recycler
        probe, with every non-resident chunk treated as reloaded.

        Each warm counts as a hit at most once: the first query served
        from a warmed chunk consumes its warmed status (a dashboard
        re-reading the same resident chunk every few seconds must not
        inflate ``stats.hits`` — the first hit is the prefetcher's
        contribution, the rest are the recycler's).  A later re-warm of
        the same URI earns a fresh hit.
        """
        if resident_uris is None:
            recycler = self.database.recycler
            resident = {uri for uri in required_uris if uri in recycler}
        else:
            resident = set(resident_uris)
        if loaded_uris is None:
            reloaded = {uri for uri in required_uris if uri not in resident}
        else:
            reloaded = set(loaded_uris)
        hits = 0
        with self._lock:
            for uri in required_uris:
                if uri not in self._warmed:
                    continue
                if uri in resident:
                    hits += 1
                    del self._warmed[uri]  # consumed: once per warm
                elif uri in reloaded:
                    self._warmed.pop(uri, None)
            self.stats.hits += hits
        return hits

    def note_query(self, session_id: int, required_uris: list[str]) -> list[str]:
        """Update session history, predict successors, and warm them.

        Returns the URIs submitted for prefetch (mainly for tests).
        """
        if not required_uris:
            return []
        self._refresh_index()
        predictions = self._predict(session_id, required_uris)
        if not predictions:
            return []
        submitted: list[str] = []
        recycler = self.database.recycler
        pool = self.database.io_executor(self.io_threads)
        with self._lock:
            for uri in predictions:
                if uri in self._inflight or uri in recycler:
                    continue
                self._inflight.add(uri)
                self.stats.issued += 1
                submitted.append(uri)
        futures = [pool.submit(self._warm_one, uri) for uri in submitted]
        with self._lock:
            self._futures = [f for f in self._futures if not f.done()]
            self._futures.extend(futures)
        return submitted

    def wait_idle(self, timeout: float | None = None) -> None:
        """Block until every issued prefetch settled (tests, benchmarks)."""
        with self._lock:
            pending = list(self._futures)
            self._futures.clear()
        for future in pending:
            try:
                future.result(timeout=timeout)
            # failures were already counted by _warm_one's stats.failed
            # accounting; this loop only drains the futures.
            # repro: ignore[swallow]
            except Exception:
                pass

    def stats_snapshot(self) -> dict[str, int]:
        with self._lock:
            return self.stats.as_dict()

    def invalidate_warmed(self) -> int:
        """Forget every warmed URI; returns how many were dropped.

        Called when the shard layout changes: the warmed bookkeeping would
        otherwise credit hits for chunks that now live in (and must be
        re-warmed into) a different shard's recycler.
        """
        with self._lock:
            dropped = len(self._warmed)
            self._warmed.clear()
        return dropped

    # -- prediction --------------------------------------------------------

    def _predict(self, session_id: int, required_uris: list[str]) -> list[str]:
        """Successor chunks of the touched set, scaled by session history."""
        with self._lock:
            history = self._sessions.get(session_id)
            # The newest chunk per instrument group this query touched.
            frontier: dict[tuple[str, str], tuple[float, str]] = {}
            for uri in required_uris:
                group = self._chunk_group.get(uri)
                when = self._chunk_time.get(uri)
                if group is None or when is None:
                    continue
                best = frontier.get(group)
                if best is None or when > best[0]:
                    frontier[group] = (when, uri)
            if not frontier:
                return []
            moved_forward = False
            if history is not None:
                for group, (when, _) in frontier.items():
                    previous = history.last_max_time.get(group)
                    if previous is not None and when > previous:
                        moved_forward = True
            if history is None:
                history = _SessionHistory(last_max_time={})
                self._sessions[session_id] = history
                while len(self._sessions) > self._max_sessions:
                    self._sessions.popitem(last=False)
            else:
                self._sessions.move_to_end(session_id)
            history.forward_streak = (
                history.forward_streak + 1 if moved_forward else 1
            )
            for group, (when, _) in frontier.items():
                prior = history.last_max_time.get(group)
                if prior is None or when > prior:
                    history.last_max_time[group] = when
            depth = min(self.depth, history.forward_streak)
            required = set(required_uris)
            predictions: list[str] = []
            for _, uri in sorted(frontier.values()):
                cursor = uri
                for _ in range(depth):
                    cursor = self._successors.get(cursor)
                    if cursor is None:
                        break
                    # Residency (not warming history) decides skipping, so
                    # a warmed-then-evicted chunk is warmable again; the
                    # recycler check happens at submission time.
                    if cursor not in required:
                        predictions.append(cursor)
            return predictions

    def _refresh_index(self) -> None:
        """(Re)build the successor chains from F and S given metadata."""
        catalog = self.database.catalog
        files = catalog.table("F").data
        if files.num_rows == self._indexed_files:
            return
        segments = catalog.table("S").data
        start_by_file: dict[int, int] = {}
        if segments.num_rows:
            file_ids = segments.column("file_id").values
            starts = segments.column("start_time").values
            order = np.argsort(starts, kind="stable")
            for row in order[::-1]:
                # Iterating descending start time, the last write wins —
                # i.e. the *earliest* start per file survives.
                start_by_file[int(file_ids[row])] = int(starts[row])
        chains: dict[tuple[str, str], list[tuple[float, str]]] = {}
        chunk_time: dict[str, float] = {}
        chunk_group: dict[str, tuple[str, str]] = {}
        for row in range(files.num_rows):
            uri = files.column("uri")[row]
            group = (
                files.column("station")[row],
                files.column("channel")[row],
            )
            start = start_by_file.get(int(files.column("file_id")[row]))
            if start is None:
                continue
            chains.setdefault(group, []).append((float(start), uri))
            chunk_time[uri] = float(start)
            chunk_group[uri] = group
        successors: dict[str, str] = {}
        for chain in chains.values():
            chain.sort()
            for (_, this_uri), (_, next_uri) in zip(chain, chain[1:]):
                successors[this_uri] = next_uri
        with self._lock:
            self._successors = successors
            self._chunk_time = chunk_time
            self._chunk_group = chunk_group
            self._indexed_files = files.num_rows

    # -- the warming task --------------------------------------------------

    def _warm_one(self, uri: str) -> None:
        database = self.database
        warm_via = self.warm_via
        try:
            if warm_via is not None:
                warm_via(uri, self.table_name)
            else:
                database.recycler.get_or_load(
                    uri, lambda u: database.load_chunk(u, self.table_name)
                )
        except Exception:
            with self._lock:
                self.stats.failed += 1
        else:
            with self._lock:
                self.stats.completed += 1
                self._warmed[uri] = None
                self._warmed.move_to_end(uri)
                while len(self._warmed) > self._max_warmed:
                    self._warmed.popitem(last=False)
        finally:
            with self._lock:
                self._inflight.discard(uri)
