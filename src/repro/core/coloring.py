"""Query-graph coloring and the paper's join-order rules R1–R4 (Section III).

Vertices (base tables) are colored **red** when they hold metadata — given
(GMd) or derived (DMd) — and **black** when they hold actual data.  Edges
inherit colors: red-red → red, black-black → black, red-black → **blue**.

The four additional optimizer rules:

* **R1** — join on red edges first, before anything else;
* **R2** — only if necessary, use cross products to join all red vertices
  into one, before using any blue or black edge;
* **R3** — do not allow bushy plans containing black vertices;
* **R4** — join on black edges only if all other edges are used.

:func:`order_joins` consumes a :class:`~repro.engine.join_graph.QueryGraph`
plus the red/black classification and emits a join tree satisfying the
rules, with the metadata branch (``Qf``) identified.  The red sub-tree may
be in any order (the paper allows bushy there); we use a greedy
smallest-relation-first heuristic.  The black part is strictly linear
(right-deep over the growing composite), per R3.

Each rule can be disabled individually — that is the ablation experiment
showing the rule set is *minimal* ("for each rule there is a query that
requires this rule to avoid loading unnecessary data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..engine import algebra
from ..engine.errors import PlanError
from ..engine.expressions import Expression, conjoin
from ..engine.join_graph import Edge, QueryGraph

__all__ = ["EdgeColor", "RuleSet", "ColoredGraph", "OrderedJoin", "order_joins"]


class EdgeColor:
    RED = "red"
    BLUE = "blue"
    BLACK = "black"


@dataclass(frozen=True)
class RuleSet:
    """Which of the paper's rules are active (all, by default)."""

    r1_red_first: bool = True
    r2_red_cross_products: bool = True
    r3_no_bushy_black: bool = True
    r4_black_edges_last: bool = True

    @classmethod
    def all_enabled(cls) -> "RuleSet":
        return cls()

    @classmethod
    def disabled(cls, *names: str) -> "RuleSet":
        """A rule set with the named rules switched off (``'r2'`` etc.)."""
        flags = {
            "r1": "r1_red_first",
            "r2": "r2_red_cross_products",
            "r3": "r3_no_bushy_black",
            "r4": "r4_black_edges_last",
        }
        kwargs = {}
        for name in names:
            if name not in flags:
                raise PlanError(f"unknown rule {name!r}")
            kwargs[flags[name]] = False
        return cls(**kwargs)


class ColoredGraph:
    """A query graph plus its red/black vertex classification."""

    def __init__(self, graph: QueryGraph, red_tables: set[str]) -> None:
        self.graph = graph
        self.red_vertices = {
            name for name in graph.vertices if name in red_tables
        }
        self.black_vertices = set(graph.vertices) - self.red_vertices

    def edge_color(self, edge: Edge) -> str:
        reds = sum(1 for t in edge.tables if t in self.red_vertices)
        if reds == 2:
            return EdgeColor.RED
        if reds == 0:
            return EdgeColor.BLACK
        return EdgeColor.BLUE

    def edges_by_color(self, color: str) -> list[Edge]:
        return [
            e for e in self.graph.edges.values() if self.edge_color(e) == color
        ]


@dataclass
class OrderedJoin:
    """The result of join ordering: the plan plus the Qf boundary."""

    plan: algebra.LogicalPlan
    metadata_branch: algebra.LogicalPlan | None
    join_order: list[str] = field(default_factory=list)
    used_cross_product: bool = False


def _leaf_plan(
    graph: QueryGraph,
    table_name: str,
    estimate_rows: Callable[[str], int],
) -> tuple[algebra.LogicalPlan, int]:
    """Scan + local selection for one vertex, with a row estimate."""
    vertex = graph.vertex(table_name)
    plan: algebra.LogicalPlan = algebra.Scan(table_name, vertex.schema)
    rows = max(estimate_rows(table_name), 1)
    predicate = vertex.local_predicate()
    if predicate is not None:
        plan = algebra.Select(plan, predicate)
        # Selections make relations smaller; a simple fixed selectivity
        # keeps the greedy ordering sane without real statistics.
        rows = max(rows // 10, 1)
    return plan, rows


def _join_condition_between(
    graph: QueryGraph, joined: set[str], newcomer: str
) -> Expression | None:
    """All edge predicates between the composite and the new vertex."""
    parts: list[Expression] = []
    for edge in graph.edges_of(newcomer):
        if edge.other(newcomer) in joined:
            parts.extend(edge.predicates)
    return conjoin(parts)


def order_joins(
    colored: ColoredGraph,
    estimate_rows: Callable[[str], int],
    rules: RuleSet = RuleSet(),
) -> OrderedJoin:
    """Produce a join tree obeying the enabled subset of R1–R4.

    ``estimate_rows`` supplies base-table cardinalities for the greedy
    heuristics (the paper's "simple join order optimizer that takes only
    selections into account" needs no more).
    """
    graph = colored.graph
    if not graph.vertices:
        raise PlanError("cannot order joins of an empty query graph")

    red = sorted(colored.red_vertices)
    black = sorted(colored.black_vertices)
    order: list[str] = []
    used_cross = False

    plans: dict[str, tuple[algebra.LogicalPlan, int]] = {
        name: _leaf_plan(graph, name, estimate_rows) for name in graph.vertices
    }

    # ---- Phase 1 (R1/R2): coalesce all red vertices into one composite.
    red_plan: algebra.LogicalPlan | None = None
    red_joined: set[str] = set()
    if red and rules.r1_red_first:
        # Greedy: start from the smallest red relation; repeatedly join the
        # smallest red vertex connected by a red edge; when none is
        # connected, fall back to a cross product (R2) if allowed.
        remaining = set(red)
        seed = min(remaining, key=lambda n: (plans[n][1], n))
        remaining.remove(seed)
        red_plan, red_rows = plans[seed]
        red_joined = {seed}
        order.append(seed)
        while remaining:
            connected = [
                name
                for name in remaining
                if any(
                    edge.other(name) in red_joined
                    and colored.edge_color(edge) == EdgeColor.RED
                    for edge in graph.edges_of(name)
                )
            ]
            if connected:
                nxt = min(connected, key=lambda n: (plans[n][1], n))
                condition = _join_condition_between(graph, red_joined, nxt)
            elif rules.r2_red_cross_products:
                nxt = min(remaining, key=lambda n: (plans[n][1], n))
                condition = _join_condition_between(graph, red_joined, nxt)
                if condition is None:
                    used_cross = True
            else:
                break  # ablation: leave disconnected red vertices for later
            remaining.remove(nxt)
            next_plan, next_rows = plans[nxt]
            red_plan = algebra.Join(red_plan, next_plan, condition)
            red_rows = max(red_rows, next_rows)
            red_joined.add(nxt)
            order.append(nxt)
        leftover_red = sorted(remaining)
    elif red:
        # R1 disabled (ablation): reds are treated like any other vertex.
        leftover_red = list(red)
    else:
        leftover_red = []

    # ---- Phase 2 (R3/R4): attach the remaining vertices linearly.
    plan = red_plan
    joined = set(red_joined)
    metadata_branch = red_plan
    pending = leftover_red + black

    def pick_next() -> str:
        # Prefer vertices connected by any usable edge; among them prefer
        # blue edges before black when R4 is on.
        connected_blue: list[str] = []
        connected_black: list[str] = []
        for name in pending:
            for edge in graph.edges_of(name):
                if edge.other(name) not in joined:
                    continue
                color = colored.edge_color(edge)
                if color == EdgeColor.BLACK:
                    connected_black.append(name)
                else:
                    connected_blue.append(name)
                break
        if connected_blue:
            return min(connected_blue, key=lambda n: (plans[n][1], n))
        if connected_black and not rules.r4_black_edges_last:
            return min(connected_black, key=lambda n: (plans[n][1], n))
        if connected_black and not pending_has_blue():
            return min(connected_black, key=lambda n: (plans[n][1], n))
        if connected_black:
            return min(connected_black, key=lambda n: (plans[n][1], n))
        return min(pending, key=lambda n: (plans[n][1], n))  # cross product

    def pending_has_blue() -> bool:
        for name in pending:
            for edge in graph.edges_of(name):
                if (
                    edge.other(name) in joined
                    and colored.edge_color(edge) != EdgeColor.BLACK
                ):
                    return True
        return False

    while pending:
        if plan is None:
            first = min(pending, key=lambda n: (plans[n][1], n))
            pending.remove(first)
            plan = plans[first][0]
            joined.add(first)
            order.append(first)
            if first in colored.red_vertices:
                metadata_branch = plan
            continue
        nxt = pick_next()
        pending.remove(nxt)
        condition = _join_condition_between(graph, joined, nxt)
        if condition is None:
            used_cross = True
        plan = algebra.Join(plan, plans[nxt][0], condition)
        joined.add(nxt)
        order.append(nxt)
        if nxt in colored.red_vertices and not colored.black_vertices & joined:
            metadata_branch = plan

    # Hyper-predicates (3+ tables) apply once everything is joined.
    residual = conjoin(graph.hyper_predicates)
    if residual is not None:
        plan = algebra.Select(plan, residual)

    return OrderedJoin(
        plan=plan,
        metadata_branch=metadata_branch,
        join_order=order,
        used_cross_product=used_cross,
    )
