"""Semantic result recycling: cache finished query results, not just chunks.

The serving workloads the paper targets are *repetitive*: a dashboard
re-issues the same day-summary every few seconds, an analyst zooms into a
window another query already fetched.  The chunk Recycler makes the second
query's stage two cheap; this module makes it free.  A
:class:`ResultCache` keyed by a normalized plan fingerprint serves

* **exact repeats** — same bound plan, any shape (aggregates included):
  the delivered table is returned without running either stage;
* **subsumed queries** — a cached result whose extracted literal bounds
  (time window, station/channel equality, value thresholds) *cover* the
  new query's bounds answers it by re-filtering the cached rows, provided
  re-filtering provably commutes with everything above the filter.

Correctness model.  A bound plan is split into a **template** (the plan
with every extractable ``column op literal`` conjunct removed from the
spine Selects) and the extracted per-column **bounds** — the same
normalization :func:`repro.engine.predicates.oriented_bound_conjuncts`
gives the chunk planner.  Subsumption requires

1. identical templates (structural fingerprints, expression ``key()``s);
2. cached bounds ⊇ query bounds per column (interval containment with
   open/closed edges; equality bounds must match exactly or be absent on
   the cached side);
3. no ``Aggregate``/``Limit`` anywhere in the plan (row filters commute
   with Select/Project/Sort/Distinct but not with those two);
4. every column whose bounds differ is visible in the cached output (the
   top projection carries it as a plain column reference), so the query's
   own conjuncts can be re-applied to the cached rows.

Re-filtering applies the *query's* bound conjuncts for the differing
columns to the cached table, which by construction yields exactly the rows
direct execution would deliver, in the same order (chunk assembly order is
URI-sorted and filters are order-preserving masks) — bit-identical by the
same argument the chunk planner uses, and asserted end-to-end by
``benchmarks/bench_result_cache.py`` and its CI gate.

Budget and invalidation mirror the :class:`~repro.engine.recycler.Recycler`:
entries charge their table bytes against a budget and are evicted by
``compute_cost × access_frequency / size``; the facade invalidates on
``register_repository`` (new chunks can extend any result) and on
derived-metadata changes (entries touching H).  Everything is guarded by
one mutex — lookups are dictionary probes plus containment tests, never
I/O.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..engine import algebra
from ..engine.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    conjoin,
    conjuncts,
)
from ..engine.predicates import is_numeric_literal, oriented_bound_conjuncts
from ..engine.table import Table
from ..util.lock_sanitizer import make_lock

__all__ = ["ResultCacheStats", "ResultCache", "normalize_plan"]

# Operators whose conjuncts are lifted out of the template into bounds.
_RANGE_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class ColumnBounds:
    """Canonical form of one column's extracted bound conjuncts.

    ``eq`` holds the values of ``=`` conjuncts (any literal type); ``low``
    / ``high`` are the tightest range edges as ``(value, inclusive)``
    pairs, numeric literals only.  The canonical form is what fingerprints
    and containment tests compare, so ``t >= 5 AND t >= 3`` equals
    ``t >= 5``.
    """

    eq: tuple = ()
    low: tuple | None = None  # (value, inclusive)
    high: tuple | None = None

    @classmethod
    def from_conjuncts(cls, ops: list[tuple[str, object]]) -> "ColumnBounds":
        eq: list = []
        low: tuple | None = None
        high: tuple | None = None
        for op, value in ops:
            if op == "=":
                if value not in eq:
                    eq.append(value)
            elif op in (">", ">="):
                candidate = (value, op == ">=")
                if low is None or _tighter_low(candidate, low):
                    low = candidate
            elif op in ("<", "<="):
                candidate = (value, op == "<=")
                if high is None or _tighter_high(candidate, high):
                    high = candidate
        return cls(eq=tuple(sorted(eq, key=repr)), low=low, high=high)

    def covers(self, other: "ColumnBounds") -> bool:
        """Does every point satisfying ``other`` also satisfy ``self``?"""
        if self.eq:
            # An equality bound covers only an identical bound set; any
            # wider/narrower query bound must re-execute.
            return self == other
        if other.eq:
            return all(self._contains_point(v) for v in other.eq)
        if self.low is not None and not _low_covered(self.low, other.low):
            return False
        if self.high is not None and not _high_covered(self.high, other.high):
            return False
        return True

    def _contains_point(self, value: object) -> bool:
        if not is_numeric_literal(value):
            # String/other equality points are only covered by an
            # unbounded cached column (no range can be extracted for them).
            return self.low is None and self.high is None
        point = float(value)
        if self.low is not None:
            edge, inclusive = float(self.low[0]), self.low[1]
            if point < edge or (point == edge and not inclusive):
                return False
        if self.high is not None:
            edge, inclusive = float(self.high[0]), self.high[1]
            if point > edge or (point == edge and not inclusive):
                return False
        return True


def _tighter_low(a: tuple, b: tuple) -> bool:
    """Is low bound ``a`` at least as tight as ``b``?"""
    if a[0] != b[0]:
        return a[0] > b[0]
    return not a[1] and b[1]  # exclusive beats inclusive at the same value


def _tighter_high(a: tuple, b: tuple) -> bool:
    if a[0] != b[0]:
        return a[0] < b[0]
    return not a[1] and b[1]


def _low_covered(cached: tuple, query: tuple | None) -> bool:
    """Cached low edge admits every point the query's low edge admits."""
    if query is None:
        return False  # query reaches below any finite cached edge
    if cached[0] != query[0]:
        return float(cached[0]) < float(query[0])
    return cached[1] or not query[1]


def _high_covered(cached: tuple, query: tuple | None) -> bool:
    if query is None:
        return False
    if cached[0] != query[0]:
        return float(cached[0]) > float(query[0])
    return cached[1] or not query[1]


@dataclass(frozen=True)
class NormalizedPlan:
    """A bound plan split into matching key material.

    ``fingerprint`` identifies the full plan (exact-repeat key);
    ``template`` identifies the plan modulo extracted bounds (subsumption
    key); ``bounds`` maps column → canonical bounds; ``bound_conjuncts``
    keeps the raw ``(column, op, literal)`` triples for re-filtering;
    ``refilterable`` is condition (3) of the module contract;
    ``output_columns`` maps a bounded column's qualified name to its name
    in the delivered table (empty when not derivable).
    """

    fingerprint: tuple
    template: tuple
    bounds: dict[str, ColumnBounds]
    bound_conjuncts: tuple[tuple[str, str, Literal], ...]
    refilterable: bool
    output_columns: dict[str, str]
    base_tables: frozenset[str]


def _expression_key(expression: Expression) -> tuple:
    return expression.key()


def _sorted_conjunct_keys(parts: list[Expression]) -> tuple:
    # AND is commutative over row sets; sorting by repr of the structural
    # key makes textually reordered WHERE clauses hash identically.
    return tuple(sorted((p.key() for p in parts), key=repr))


def _plan_key(plan: algebra.LogicalPlan, extract: bool) -> tuple:
    """Structural fingerprint; with ``extract`` the spine Selects drop
    their extractable bound conjuncts (the template form).

    ``extract`` stays true only along the unary spine from the root: a
    Select nested under a join keeps its predicate verbatim, so bounds are
    only ever lifted from positions where re-filtering the delivered rows
    is meaningful.
    """
    if isinstance(plan, algebra.Scan):
        return ("scan", plan.table_name)
    if isinstance(plan, algebra.Select):
        retained = conjuncts(plan.predicate)
        if extract:
            retained = [
                part for part in retained if not _extractable(part)
            ]
            if not retained:
                # A fully-extracted Select is transparent: a bound-only
                # WHERE matches a template with no WHERE at all.
                return _plan_key(plan.child, extract)
        return (
            "select",
            _sorted_conjunct_keys(retained),
            _plan_key(plan.child, extract),
        )
    if isinstance(plan, algebra.Project):
        return (
            "project",
            tuple((name, expr.key()) for name, expr in plan.outputs),
            _plan_key(plan.child, extract),
        )
    if isinstance(plan, algebra.Join):
        condition = plan.condition.key() if plan.condition is not None else None
        return (
            "join",
            condition,
            _plan_key(plan.left, False),
            _plan_key(plan.right, False),
        )
    if isinstance(plan, algebra.Aggregate):
        return (
            "aggregate",
            tuple(plan.group_by),
            tuple(
                (
                    spec.function,
                    spec.argument.key() if spec.argument is not None else None,
                    spec.output_name,
                )
                for spec in plan.aggregates
            ),
            _plan_key(plan.child, extract),
        )
    if isinstance(plan, algebra.Sort):
        return (
            "sort",
            tuple((key.name, key.ascending) for key in plan.keys),
            _plan_key(plan.child, extract),
        )
    if isinstance(plan, algebra.Limit):
        return ("limit", plan.count, _plan_key(plan.child, extract))
    if isinstance(plan, algebra.Distinct):
        return ("distinct", _plan_key(plan.child, extract))
    if isinstance(plan, algebra.Union):
        return (
            "union",
            tuple(_plan_key(child, False) for child in plan.children()),
        )
    if isinstance(plan, algebra.EmptyRelation):
        return ("empty",)
    # Rewritten/physical access paths never appear in freshly bound plans;
    # fall back to an identity key that simply never matches across
    # queries.
    return ("opaque", type(plan).__name__, id(plan))


def _extractable(conjunct: Expression) -> bool:
    for _column, op, literal in oriented_bound_conjuncts(conjunct):
        if op == "=":
            return True
        if op in _RANGE_OPS and is_numeric_literal(literal.value):
            return True
    return False


def _spine_bound_conjuncts(
    plan: algebra.LogicalPlan,
) -> list[tuple[str, str, Literal]]:
    """Extractable (column, op, literal) triples from the spine Selects."""
    found: list[tuple[str, str, Literal]] = []
    node = plan
    while True:
        children = node.children()
        if len(children) != 1:
            return found
        if isinstance(node, algebra.Select):
            for part in conjuncts(node.predicate):
                if _extractable(part):
                    found.extend(oriented_bound_conjuncts(part))
        node = children[0]


def _contains_blocking_node(plan: algebra.LogicalPlan) -> bool:
    if isinstance(plan, (algebra.Aggregate, algebra.Limit)):
        return True
    return any(_contains_blocking_node(child) for child in plan.children())


def _output_column_map(plan: algebra.LogicalPlan) -> dict[str, str]:
    """Qualified column → delivered-table column name, where derivable.

    Walks the plan bottom-up: leaves expose their schema names as
    themselves; a Project keeps only columns it re-emits as plain
    references (under their output names); filters/sorts pass through.
    """
    if isinstance(plan, algebra.Project):
        below = _output_column_map(plan.child)
        reverse = {child_name: source for source, child_name in below.items()}
        mapped: dict[str, str] = {}
        for name, expr in plan.outputs:
            if isinstance(expr, ColumnRef) and expr.name in reverse:
                source = reverse[expr.name]
                if source not in mapped:
                    mapped[source] = name
        return mapped
    children = plan.children()
    if len(children) == 1 and isinstance(
        plan, (algebra.Select, algebra.Sort, algebra.Limit, algebra.Distinct)
    ):
        return _output_column_map(children[0])
    return {name: name for name in plan.schema.names}


def normalize_plan(plan: algebra.LogicalPlan) -> NormalizedPlan:
    """Split a bound plan into (fingerprint, template, bounds) key material."""
    triples = _spine_bound_conjuncts(plan)
    by_column: dict[str, list[tuple[str, object]]] = {}
    for column, op, literal in triples:
        by_column.setdefault(column, []).append((op, literal.value))
    bounds = {
        column: ColumnBounds.from_conjuncts(ops)
        for column, ops in by_column.items()
    }
    return NormalizedPlan(
        fingerprint=_plan_key(plan, extract=False),
        template=_plan_key(plan, extract=True),
        bounds=bounds,
        bound_conjuncts=tuple(triples),
        refilterable=not _contains_blocking_node(plan),
        output_columns=_output_column_map(plan),
        base_tables=frozenset(plan.base_tables()),
    )


@dataclass
class ResultCacheStats:
    """Cumulative counters (``repro cache`` and the benchmark)."""

    lookups: int = 0
    exact_hits: int = 0
    subsumption_hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    bytes_inserted: int = 0
    bytes_evicted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "lookups": self.lookups,
            "exact_hits": self.exact_hits,
            "subsumption_hits": self.subsumption_hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "bytes_inserted": self.bytes_inserted,
            "bytes_evicted": self.bytes_evicted,
        }


@dataclass
class _CacheEntry:
    """One cached delivered result plus its matching key material."""

    normalized: NormalizedPlan
    table: Table
    compute_seconds: float
    nbytes: int
    access_count: int = 1
    last_access: float = field(default_factory=time.monotonic)

    def score(self) -> float:
        """Benefit density, exactly the Recycler's cost-aware rule."""
        return (self.compute_seconds * self.access_count) / max(self.nbytes, 1)


class ResultCache:
    """A budgeted, thread-safe cache of delivered query results.

    Sits between the :class:`~repro.core.sommelier.SommelierDB` facade and
    the :class:`~repro.core.two_stage.TwoStageCompiler`: the facade asks
    :meth:`serve` before compiling stage one and :meth:`admit`\\ s every
    executed result.  All methods are safe under concurrent queries;
    tables are immutable so served references never race with eviction.
    """

    def __init__(self, budget_bytes: int = 256 * 1024 * 1024) -> None:
        if budget_bytes <= 0:
            raise ValueError("result cache budget must be positive")
        self.budget_bytes = budget_bytes
        self.stats = ResultCacheStats()
        self._lock = make_lock("ResultCache._lock")
        self._entries: dict[tuple, _CacheEntry] = {}
        # template fingerprint -> exact fingerprints sharing it (the
        # subsumption candidate index).
        self._by_template: dict[tuple, set[tuple]] = {}
        self._bytes_cached = 0
        # Bumped by every invalidation; admissions carry the generation
        # observed before executing, so a result computed against
        # since-invalidated inputs is never (re-)admitted.
        self._generation = 0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes_cached

    @property
    def generation(self) -> int:
        """The invalidation epoch; capture before executing, pass to admit."""
        with self._lock:
            return self._generation

    def stats_snapshot(self) -> dict[str, int]:
        with self._lock:
            snapshot = self.stats.as_dict()
            snapshot["entries"] = len(self._entries)
            snapshot["budget_bytes"] = self.budget_bytes
            snapshot["bytes_cached"] = self._bytes_cached
            return snapshot

    # -- the serving path --------------------------------------------------

    def serve(
        self, normalized: NormalizedPlan
    ) -> tuple[Table, str] | None:
        """A cached answer for the plan, or None.

        Returns ``(table, outcome)`` with outcome ``"exact"`` or
        ``"subsumed"``.  The re-filter for a subsumed answer runs outside
        the lock — entries are immutable once admitted.
        """
        refilter: tuple[_CacheEntry, list] | None = None
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(normalized.fingerprint)
            if entry is not None:
                entry.access_count += 1
                entry.last_access = time.monotonic()
                self.stats.exact_hits += 1
                return entry.table, "exact"
            candidate = self._find_subsuming(normalized)
            if candidate is None:
                self.stats.misses += 1
                return None
            entry, differing = candidate
            entry.access_count += 1
            entry.last_access = time.monotonic()
            self.stats.subsumption_hits += 1
            refilter = (entry, differing)
        entry, differing = refilter
        return self._refilter(entry, normalized, differing), "subsumed"

    def _find_subsuming(
        self, normalized: NormalizedPlan
    ) -> tuple[_CacheEntry, list[str]] | None:
        """Caller holds the lock.  Best covering entry + differing columns."""
        if not normalized.refilterable:
            return None
        best: tuple[_CacheEntry, list[str]] | None = None
        for fingerprint in self._by_template.get(normalized.template, ()):
            entry = self._entries.get(fingerprint)
            if entry is None:
                continue
            differing = self._covering_diff(entry.normalized, normalized)
            if differing is None:
                continue
            if best is None or len(differing) < len(best[1]):
                best = (entry, differing)
        return best

    @staticmethod
    def _covering_diff(
        cached: NormalizedPlan, query: NormalizedPlan
    ) -> list[str] | None:
        """Columns to re-filter by, or None when the entry cannot serve."""
        empty = ColumnBounds()
        columns = set(cached.bounds) | set(query.bounds)
        differing: list[str] = []
        for column in columns:
            have = cached.bounds.get(column, empty)
            want = query.bounds.get(column, empty)
            if have == want:
                continue
            if not have.covers(want):
                return None
            if column not in cached.output_columns:
                return None
            differing.append(column)
        return differing

    def _refilter(
        self,
        entry: _CacheEntry,
        normalized: NormalizedPlan,
        differing: list[str],
    ) -> Table:
        """Apply the query's own bound conjuncts to the cached rows."""
        table = entry.table
        output = entry.normalized.output_columns
        parts: list[Expression] = []
        wanted = set(differing)
        for column, op, literal in normalized.bound_conjuncts:
            if column in wanted:
                parts.append(
                    Comparison(op, ColumnRef(output[column]), literal)
                )
        predicate = conjoin(parts)
        if predicate is None:
            return table
        mask = np.asarray(predicate.evaluate(table), dtype=np.bool_)
        if mask.all():
            return table
        return table.filter(mask)

    # -- admission and replacement -----------------------------------------

    def admit(
        self,
        normalized: NormalizedPlan,
        table: Table,
        compute_seconds: float,
        generation: int | None = None,
    ) -> bool:
        """Cache one delivered result; returns False when it cannot fit.

        ``generation`` is the value of :attr:`generation` observed before
        the result was computed: if an invalidation ran in between (a
        concurrent registration or window materialization), the result
        reflects inputs that no longer exist and must not enter the cache
        — admitting it after the invalidation would resurrect exactly the
        staleness the invalidation flushed.
        """
        nbytes = table.nbytes
        if nbytes > self.budget_bytes:
            return False
        with self._lock:
            if generation is not None and generation != self._generation:
                return False
            self._evict_entry(normalized.fingerprint)
            while self._entries and (
                self._bytes_cached + nbytes > self.budget_bytes
            ):
                victim = min(self._entries.values(), key=_CacheEntry.score)
                self._evict_entry(victim.normalized.fingerprint)
                self.stats.evictions += 1
                self.stats.bytes_evicted += victim.nbytes
            entry = _CacheEntry(
                normalized=normalized,
                table=table,
                compute_seconds=max(compute_seconds, 0.0),
                nbytes=nbytes,
            )
            self._entries[normalized.fingerprint] = entry
            self._by_template.setdefault(normalized.template, set()).add(
                normalized.fingerprint
            )
            self._bytes_cached += nbytes
            self.stats.insertions += 1
            self.stats.bytes_inserted += nbytes
        return True

    def _evict_entry(self, fingerprint: tuple) -> None:
        # Caller holds the lock.
        entry = self._entries.pop(fingerprint, None)
        if entry is None:
            return
        self._bytes_cached -= entry.nbytes
        peers = self._by_template.get(entry.normalized.template)
        if peers is not None:
            peers.discard(fingerprint)
            if not peers:
                del self._by_template[entry.normalized.template]

    # -- invalidation ------------------------------------------------------

    def invalidate_all(self) -> int:
        """Drop everything (new data registered: any result may change)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._by_template.clear()
            self._bytes_cached = 0
            self._generation += 1
            self.stats.invalidations += dropped
            return dropped

    def invalidate_tables(self, tables) -> int:
        """Drop entries whose plans read any of the given base tables."""
        doomed_tables = set(tables)
        with self._lock:
            doomed = [
                fingerprint
                for fingerprint, entry in self._entries.items()
                if entry.normalized.base_tables & doomed_tables
            ]
            for fingerprint in doomed:
                self._evict_entry(fingerprint)
            self._generation += 1
            self.stats.invalidations += len(doomed)
            return len(doomed)
