"""The five loading approaches of the evaluation (Section VI-A).

* **eager_csv** — decode every mSEED file to CSV text, then bulk-load the
  CSV (MonetDB's ``COPY INTO``).  Pays full text serialization + parsing.
* **eager_plain** — decode mSEED files straight into the DBMS (the paper's
  extension of MonetDB that reads mSEED directly).
* **eager_index** — eager_plain + primary/foreign-key indexes (FK indexes
  are join indexes: building one *is* computing the join).
* **eager_dmd** — eager_index + eager computation of all derived metadata
  (fully materializing the H view).
* **lazy** — the paper's approach: extract only the metadata of every file
  (Registrar), leave D empty, derive DMd incrementally, load chunks during
  query evaluation and cache them in the Recycler.  No FK indexes — the
  constraints hold by construction on system-generated keys.

Every function returns ``(SommelierDB, LoadReport)``; the report carries the
per-bucket cost breakdown of Figure 6 and the size accounting of Table III.

Eager variants *page out* the actual-data table to disk-backed storage so
that query-time scans stream through the buffer pool: when data + indexes
exceed the pool budget, cold and hot scans both pay I/O — the memory cliff
of Figures 7–9.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..engine.table import TableBuilder
from ..mseed import csvio
from ..mseed.repository import FileRepository
from .registrar import XseedChunkLoader
from .sommelier import SommelierDB
from .two_stage import TwoStageOptions

__all__ = ["LoadReport", "APPROACHES", "prepare", "prepare_lazy",
           "prepare_eager_plain", "prepare_eager_csv",
           "prepare_eager_index", "prepare_eager_dmd"]

BUCKETS = ("mseed_to_csv", "csv_to_db", "mseed_to_db", "metadata",
           "indexing", "dmd")


@dataclass
class LoadReport:
    """Cost and size accounting for one loading approach.

    ``seconds`` buckets match Figure 6's stacked bars; the size fields match
    Table III's columns.
    """

    approach: str
    seconds: dict[str, float] = field(default_factory=dict)
    repo_bytes: int = 0
    csv_bytes: int = 0
    db_bytes: int = 0
    index_bytes: int = 0
    metadata_bytes: int = 0
    num_files: int = 0
    num_segments: int = 0
    num_samples: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def bucket(self, name: str) -> float:
        return self.seconds.get(name, 0.0)


def _new_db(
    workdir: str | None,
    lazy: bool,
    buffer_pool_bytes: int,
    recycler_bytes: int,
    options: TwoStageOptions | None,
) -> SommelierDB:
    return SommelierDB.create(
        workdir=workdir,
        lazy=lazy,
        buffer_pool_bytes=buffer_pool_bytes,
        recycler_bytes=recycler_bytes,
        options=options,
    )


def _register_metadata(
    db: SommelierDB, repository: FileRepository, report: LoadReport,
    threads: int,
) -> None:
    registrar_report = db.register_repository(repository, threads=threads)
    report.seconds["metadata"] = registrar_report.seconds
    report.num_files = registrar_report.num_files
    report.num_segments = registrar_report.num_segments
    report.metadata_bytes = registrar_report.metadata_bytes
    report.repo_bytes = repository.total_bytes()


def _load_actual_from_mseed(db: SommelierDB, report: LoadReport) -> None:
    """Decode every chunk into D and page D out to disk (bulk load)."""
    started = time.perf_counter()
    loader = db.database.chunk_loader
    assert isinstance(loader, XseedChunkLoader)
    builder = TableBuilder(db.database.catalog.table("D").schema)
    for uri in sorted(loader._file_ids):
        chunk = loader.load(uri, "D")
        builder.append_columns([c.values for c in chunk.columns])
        report.num_samples += chunk.num_rows
    db.database.insert("D", builder.finish())
    db.database.page_out("D")
    report.seconds["mseed_to_db"] = time.perf_counter() - started
    report.db_bytes = db.database.database_nbytes()


def _load_actual_from_csv(db: SommelierDB, report: LoadReport) -> None:
    """mSEED → CSV files → parse → D (the eager_csv pipeline)."""
    loader = db.database.chunk_loader
    assert isinstance(loader, XseedChunkLoader)
    csv_dir = os.path.join(db.database.workdir, "csv")
    os.makedirs(csv_dir, exist_ok=True)

    to_csv_started = time.perf_counter()
    csv_paths: list[str] = []
    for uri in sorted(loader._file_ids):
        file_id = loader.file_id_of(uri)
        csv_path = os.path.join(csv_dir, f"{file_id}.csv")
        report.csv_bytes += csvio.volume_to_csv(uri, csv_path, file_id)
        csv_paths.append(csv_path)
    report.seconds["mseed_to_csv"] = time.perf_counter() - to_csv_started

    parse_started = time.perf_counter()
    builder = TableBuilder(db.database.catalog.table("D").schema)
    for csv_path in csv_paths:
        file_ids, segment_nos, times, values = csvio.parse_csv(csv_path)
        builder.append_columns([file_ids, segment_nos, times, values])
        report.num_samples += len(file_ids)
    db.database.insert("D", builder.finish())
    db.database.page_out("D")
    report.seconds["csv_to_db"] = time.perf_counter() - parse_started
    report.db_bytes = db.database.database_nbytes()


def _build_indexes(db: SommelierDB, report: LoadReport) -> None:
    started = time.perf_counter()
    db.database.build_primary_key_indexes()
    db.database.build_foreign_key_indexes()
    report.seconds["indexing"] = time.perf_counter() - started
    report.index_bytes = db.database.index_nbytes()


def _derive_all_dmd(db: SommelierDB, report: LoadReport) -> None:
    derivation = db.views.derive_all()
    report.seconds["dmd"] = derivation.seconds


# -- the five approaches -------------------------------------------------------------


def prepare_lazy(
    repository: FileRepository,
    workdir: str | None = None,
    buffer_pool_bytes: int = 256 * 1024 * 1024,
    recycler_bytes: int = 1 << 30,
    options: TwoStageOptions | None = None,
    threads: int = 8,
) -> tuple[SommelierDB, LoadReport]:
    """Metadata-only preparation: the paper's contribution."""
    report = LoadReport("lazy")
    db = _new_db(workdir, True, buffer_pool_bytes, recycler_bytes, options)
    _register_metadata(db, repository, report, threads)
    report.db_bytes = db.database.database_nbytes()
    return db, report


def prepare_eager_plain(
    repository: FileRepository,
    workdir: str | None = None,
    buffer_pool_bytes: int = 256 * 1024 * 1024,
    recycler_bytes: int = 1 << 30,
    options: TwoStageOptions | None = None,
    threads: int = 8,
) -> tuple[SommelierDB, LoadReport]:
    """Direct mSEED → DBMS bulk load of everything."""
    report = LoadReport("eager_plain")
    db = _new_db(workdir, False, buffer_pool_bytes, recycler_bytes, options)
    _register_metadata(db, repository, report, threads)
    _load_actual_from_mseed(db, report)
    return db, report


def prepare_eager_csv(
    repository: FileRepository,
    workdir: str | None = None,
    buffer_pool_bytes: int = 256 * 1024 * 1024,
    recycler_bytes: int = 1 << 30,
    options: TwoStageOptions | None = None,
    threads: int = 8,
) -> tuple[SommelierDB, LoadReport]:
    """mSEED → CSV → COPY INTO pipeline."""
    report = LoadReport("eager_csv")
    db = _new_db(workdir, False, buffer_pool_bytes, recycler_bytes, options)
    _register_metadata(db, repository, report, threads)
    _load_actual_from_csv(db, report)
    return db, report


def prepare_eager_index(
    repository: FileRepository,
    workdir: str | None = None,
    buffer_pool_bytes: int = 256 * 1024 * 1024,
    recycler_bytes: int = 1 << 30,
    options: TwoStageOptions | None = None,
    threads: int = 8,
) -> tuple[SommelierDB, LoadReport]:
    """eager_plain + primary and foreign key (join) indexes."""
    db, report = prepare_eager_plain(
        repository, workdir, buffer_pool_bytes, recycler_bytes, options,
        threads,
    )
    report.approach = "eager_index"
    _build_indexes(db, report)
    return db, report


def prepare_eager_dmd(
    repository: FileRepository,
    workdir: str | None = None,
    buffer_pool_bytes: int = 256 * 1024 * 1024,
    recycler_bytes: int = 1 << 30,
    options: TwoStageOptions | None = None,
    threads: int = 8,
) -> tuple[SommelierDB, LoadReport]:
    """eager_index + eagerly materialized derived metadata (full H view)."""
    db, report = prepare_eager_index(
        repository, workdir, buffer_pool_bytes, recycler_bytes, options,
        threads,
    )
    report.approach = "eager_dmd"
    _derive_all_dmd(db, report)
    return db, report


APPROACHES = {
    "lazy": prepare_lazy,
    "eager_plain": prepare_eager_plain,
    "eager_csv": prepare_eager_csv,
    "eager_index": prepare_eager_index,
    "eager_dmd": prepare_eager_dmd,
}


def prepare(
    approach: str, repository: FileRepository, **kwargs
) -> tuple[SommelierDB, LoadReport]:
    """Prepare a database with the named approach."""
    try:
        factory = APPROACHES[approach]
    except KeyError:
        raise ValueError(
            f"unknown loading approach {approach!r}; "
            f"choose from {sorted(APPROACHES)}"
        ) from None
    return factory(repository, **kwargs)
