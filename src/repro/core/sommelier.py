"""SommelierDB — the public facade of the reproduced system.

"A system that, like a good sommelier, stores the bottles (actual data) in
the cellar (the file repository) but keeps the contents of the labels (the
metadata) in his head" (Section I).

A :class:`SommelierDB` wraps one engine :class:`~repro.engine.Database`
prepared in either *lazy* or *eager* mode:

* **lazy** — only given metadata is loaded (by the Registrar); queries run
  the two-stage model with run-time chunk rewriting, and derived metadata
  materializes incrementally via Algorithm 1;
* **eager** — actual data is already in ``D`` (one of the eager loading
  strategies put it there); queries run single-stage, still with the R1–R4
  join ordering; Algorithm 1 still computes missing DMd windows on demand,
  but over the in-database ``D``.

Typical use::

    db = SommelierDB.create()
    db.register_repository(FileRepository("/data/ingv"))
    result = db.query(\"\"\"
        SELECT AVG(D.sample_value) FROM dataview
        WHERE F.station = 'ISK' AND F.channel = 'BHE'
          AND D.sample_time >= '2010-01-12T22:15:00.000'
          AND D.sample_time <  '2010-01-12T22:15:02.000'
    \"\"\")
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from ..engine import algebra
from ..engine.chunk_store import _fsync_dir, _fsync_file
from ..engine.database import Database
from ..engine.errors import ExecutionError
from ..engine.physical import ExecStats
from ..engine.sql import bind_sql
from ..mseed.repository import FileRepository
from .partial_views import DerivationReport, PartialViewManager
from .query_types import QueryType, classify_plan
from .registrar import Registrar, RegistrarReport, XseedChunkLoader
from .schema import SommelierConfig, create_seismology_schema
from .two_stage import QueryResult, TwoStageCompiler, TwoStageOptions
from ..util.lock_sanitizer import make_lock

__all__ = ["SommelierDB"]

# Durable catalog pointers: which chunks exist (loader URI→file-id map) and
# where the given metadata lives, written atomically under the workdir.
CATALOG_POINTERS = "catalog.json"
CATALOG_VERSION = 1
# Given-metadata tables checkpointed through the paged store.  Derived
# metadata (H) is deliberately *not* persisted: Algorithm 1 re-derives it
# on demand — over re-hydrated chunks, so cheaply — which keeps restart
# correctness independent of the view manager's in-memory bookkeeping.
DURABLE_TABLES = ("F", "S")


@dataclass
class SommelierStats:
    """Cumulative facade-level counters."""

    queries_executed: int = 0
    derivations: int = 0
    windows_materialized: int = 0
    chunks_loaded_total: int = 0
    result_cache_hits: int = 0
    result_cache_subsumed: int = 0
    shared_scan_attached: int = 0
    chunks_shared: int = 0
    shard_subplans: int = 0
    chunks_from_shards: int = 0

    def merge(self, other: "SommelierStats") -> None:
        self.queries_executed += other.queries_executed
        self.derivations += other.derivations
        self.windows_materialized += other.windows_materialized
        self.chunks_loaded_total += other.chunks_loaded_total
        self.result_cache_hits += other.result_cache_hits
        self.result_cache_subsumed += other.result_cache_subsumed
        self.shared_scan_attached += other.shared_scan_attached
        self.chunks_shared += other.chunks_shared
        self.shard_subplans += other.shard_subplans
        self.chunks_from_shards += other.chunks_from_shards

    @classmethod
    def delta_from(
        cls, result: QueryResult, derivation: DerivationReport
    ) -> "SommelierStats":
        """The counter delta one answered query contributes.

        The single source of the accounting rule, shared by the facade's
        cumulative stats and per-session stats so they cannot drift.
        """
        delta = cls(queries_executed=1)
        if derivation.applicable:
            delta.derivations = 1
            delta.windows_materialized = derivation.windows_inserted
            delta.chunks_loaded_total = derivation.chunks_loaded
        delta.chunks_loaded_total += result.stats.chunks_loaded
        delta.result_cache_hits = result.stats.results_from_cache
        delta.result_cache_subsumed = result.stats.results_subsumed
        delta.shared_scan_attached = result.stats.shared_scan_attached
        delta.chunks_shared = result.stats.chunks_shared
        delta.shard_subplans = result.stats.shard_subplans
        delta.chunks_from_shards = result.stats.chunks_from_shards
        return delta


class SommelierDB:
    """One prepared database instance (lazy or eager).

    :meth:`query` is safe to call from multiple threads: the engine caches
    (recycler, buffer pool) are internally synchronized, Algorithm-1
    derivation is serialized by a facade-level lock (derived-metadata
    inserts are the one shared write path at query time), and the stats
    counters are updated under a mutex.  For per-client accounting use
    :meth:`session` (or a :class:`~repro.core.session.SessionPool`), which
    wraps this facade with per-session counters.
    """

    # Machine-checked (repro analyze, lock-discipline): session ids must be
    # unique and the shard-epoch merge must happen exactly once per epoch.
    _GUARDED = {"_stats_lock": ("_session_counter", "_shard_epoch_seen")}

    def __init__(
        self,
        database: Database,
        config: SommelierConfig,
        lazy: bool = True,
        options: TwoStageOptions | None = None,
    ) -> None:
        self.database = database
        self.config = config
        self.lazy = lazy
        self.options = options if options is not None else TwoStageOptions()
        self.compiler = TwoStageCompiler(database, config, self.options)
        self.views = PartialViewManager(database, config, self.compiler, lazy)
        # Workload-aware prefetcher (opt-in): warms the recycler with the
        # chunks each session is predicted to need next.
        self.prefetcher = None
        if lazy and self.options.prefetch:
            from .prefetch import WorkloadPrefetcher

            self.prefetcher = WorkloadPrefetcher(
                database,
                table_name=config.actual_tables[0],
                depth=self.options.prefetch_depth,
            )
        # Semantic result recycler (opt-in): caches delivered results by
        # normalized plan fingerprint and serves repeats/subsumed queries
        # without touching either execution stage.
        self.result_cache = None
        if self.options.result_cache:
            from .result_cache import ResultCache

            self.result_cache = ResultCache(self.options.result_cache_bytes)
        self.stats = SommelierStats()
        self._stats_lock = make_lock("SommelierDB._stats_lock")
        self._derivation_lock = make_lock("SommelierDB._derivation_lock")
        self._session_counter = 0
        self._closed = False
        # Shard-layout generation last reconciled with the caches: when the
        # coordinator's epoch moves past it (shard count changed), cached
        # results and warmed-URI bookkeeping reference the old layout and
        # are invalidated before the next query runs.
        self._shard_epoch_seen = 0
        # Shard layout recovered from a checkpoint (applied by open()).
        self._restored_sharding = None
        self._wire_prefetcher()

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        workdir: str | None = None,
        lazy: bool = True,
        buffer_pool_bytes: int = 256 * 1024 * 1024,
        recycler_bytes: int = 1 << 30,
        recycler_policy: str = "lru",
        options: TwoStageOptions | None = None,
    ) -> "SommelierDB":
        """A fresh database with the seismology warehouse schema installed."""
        database = Database(
            workdir=workdir,
            buffer_pool_bytes=buffer_pool_bytes,
            recycler_bytes=recycler_bytes,
            recycler_policy=recycler_policy,
        )
        config = create_seismology_schema(database)
        return cls(database, config, lazy=lazy, options=options)

    @classmethod
    def open(
        cls,
        workdir: str,
        lazy: bool = True,
        buffer_pool_bytes: int = 256 * 1024 * 1024,
        recycler_bytes: int = 1 << 30,
        recycler_policy: str = "lru",
        options: TwoStageOptions | None = None,
    ) -> "SommelierDB":
        """Reopen a database over a persistent workdir — and come back warm.

        Restores the durable catalog pointers written by :meth:`checkpoint`
        (the chunk loader's URI→file-id map, the given-metadata tables
        F and S through the paged store, and the paged residency of any
        table an eager preparation paged out), while the recycler's disk
        tier picks up every chunk spilled or flushed by the previous
        process: the first stage-two after a restart re-hydrates
        mmap-backed chunks instead of re-decoding Steim payloads.  Pass
        ``lazy=False`` to reopen an eager database.  Not restored: hash /
        join indexes (rebuild with ``database.build_*_indexes``) and
        derived metadata H (re-derived on demand).  A workdir without a
        checkpoint opens as a fresh (unregistered) database.
        """
        db = cls.create(
            workdir=workdir,
            lazy=lazy,
            buffer_pool_bytes=buffer_pool_bytes,
            recycler_bytes=recycler_bytes,
            recycler_policy=recycler_policy,
            options=options,
        )
        db._restore_catalog_pointers()
        # Chunk statistics committed inside chunk-store manifests survive
        # even a crash that lost the checkpoint: adopt them so the planner
        # can prune by value without re-decoding anything.
        db.database.adopt_store_stats()
        # Checkpointed shard layout: a caller that leaves ``shards`` at 0
        # inherits the layout the closing process ran with, so the reopened
        # database scatters to the same shard stores (per-shard warm
        # restart).  Explicit caller options always win.
        restored = db._restored_sharding
        if (
            restored is not None
            and db.options.shards == 0
            and not db.options.shared_scan
        ):
            db._apply_shards(restored.shards, bucket_ms=restored.bucket_ms)
        elif db.options.shards and db.database.chunk_loader is not None:
            db.database.sharding(db.options.shards)
        return db

    def _apply_shards(self, shards: int, bucket_ms: int | None = None) -> None:
        """Switch this facade to sharded stage two (checkpoint restore)."""
        import dataclasses

        self.options = dataclasses.replace(self.options, shards=int(shards))
        self.compiler = TwoStageCompiler(self.database, self.config, self.options)
        self.views = PartialViewManager(
            self.database, self.config, self.compiler, self.lazy
        )
        if self.database.chunk_loader is not None:
            self.database.sharding(self.options.shards, bucket_ms=bucket_ms)
        self._wire_prefetcher()

    def _wire_prefetcher(self) -> None:
        """Point prefetch warm-ups at the right cache for the current mode.

        Sharded databases warm the owning shard worker's recycler (the
        parent recycler never serves sharded scans); unsharded ones keep
        the classic parent-recycler warm path.
        """
        if self.prefetcher is None:
            return
        if self.options.shards > 0:
            shards = self.options.shards

            def warm_in_shard(uri: str, table_name: str) -> None:
                self.database.sharding(shards).warm_chunk(uri, table_name)

            self.prefetcher.warm_via = warm_in_shard
        else:
            self.prefetcher.warm_via = None

    # -- durability ------------------------------------------------------------

    def checkpoint(self) -> None:
        """Persist catalog pointers and flush the warm tier to disk.

        After a checkpoint, :meth:`open` on the same workdir serves queries
        without re-registering the repository and without re-decoding any
        chunk that was warm at checkpoint time.  Runs automatically when a
        persistent database is closed.
        """
        pointers: dict = {"version": CATALOG_VERSION, "tables": []}
        loader = self.database.chunk_loader
        if isinstance(loader, XseedChunkLoader):
            pointers["loader"] = {
                "io_delay_ms": loader.io_delay_ms,
                "file_ids": dict(loader._file_ids),
            }
        # Per-chunk statistics ride in the same durable pointers file, so a
        # reopened database prunes as well as the one that closed.
        pointers["chunk_stats"] = self.database.chunk_stats.to_json()
        # The shard layout is two parameters — placement is a pure hash —
        # so checkpointing {shards, bucket_ms} is enough for a reopened
        # database to route every chunk back to the shard that spilled it.
        coordinator = self.database.shard_coordinator
        if coordinator is not None:
            pointers["sharding"] = coordinator.layout.to_json()
        elif self.options.shards:
            from ..engine.sharding import DEFAULT_BUCKET_MS

            pointers["sharding"] = {
                "shards": self.options.shards,
                "bucket_ms": DEFAULT_BUCKET_MS,
            }
        for base in self.database.catalog.tables():
            if base.paged and self.database.paged_store.has_table(base.name):
                # Pages are already on disk (page_out wrote them); record
                # that the reopened catalog must re-adopt them as paged —
                # this is what makes eager databases restartable.
                pointers["tables"].append({"name": base.name, "paged": True})
            elif base.name in DURABLE_TABLES and base.num_rows:
                self.database.paged_store.store_table(base.name, base.data)
                pointers["tables"].append({"name": base.name, "paged": False})
        self.database.recycler.flush_to_store()
        path = os.path.join(self.database.workdir, CATALOG_POINTERS)
        staging = path + ".tmp"
        # Same commit discipline as the chunk store: the pointers hit the
        # platter before the rename makes them the catalog, and the rename
        # itself is made durable by syncing the workdir.  Otherwise a
        # power loss can leave a zero-length catalog.json that reopen
        # treats as "no checkpoint" — silently discarding paged tables.
        with open(staging, "w", encoding="utf-8") as handle:
            json.dump(pointers, handle)
            _fsync_file(handle)
        os.replace(staging, path)
        _fsync_dir(self.database.workdir)

    def _restore_catalog_pointers(self) -> bool:
        """Load the checkpoint, if one exists and parses; returns success."""
        path = os.path.join(self.database.workdir, CATALOG_POINTERS)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                pointers = json.load(handle)
        except (OSError, ValueError):
            return False
        if not isinstance(pointers, dict) or (
            pointers.get("version") != CATALOG_VERSION
        ):
            return False
        loader_info = pointers.get("loader")
        if isinstance(loader_info, dict):
            loader = XseedChunkLoader(
                io_delay_ms=float(loader_info.get("io_delay_ms", 0.0))
            )
            for uri, file_id in loader_info.get("file_ids", {}).items():
                loader.assign(uri, int(file_id))
            self.database.set_chunk_loader(loader)
        self.database.chunk_stats.load_json(pointers.get("chunk_stats"))
        from ..engine.sharding import ShardLayout

        self._restored_sharding = ShardLayout.from_json(
            pointers.get("sharding")
        )
        for spec in pointers.get("tables", []):
            name = spec["name"]
            base = self.database.catalog.table(name)
            if not self.database.paged_store.restore_schema(name, base.schema):
                continue
            if spec.get("paged"):
                # Disk-resident table (an eager database's D): scans go
                # back through the buffer pool, as before the restart.
                base.paged = True
                base.truncate()
            else:
                base.replace(self.database.paged_store.read_table(name))
        return True

    def register_repository(
        self, repository: FileRepository, threads: int = 8
    ) -> RegistrarReport:
        """Eagerly load the given metadata of every chunk (Registrar)."""
        report = Registrar(self.database, threads=threads).register(repository)
        if self.options.shards and self.database.chunk_loader is not None:
            # Materialize the coordinator now so its layout epoch is
            # established before the first query (a lazily created
            # coordinator would look like a layout change one query later).
            self.database.sharding(self.options.shards)
        if self.result_cache is not None:
            # New chunks can extend any cached answer: results computed
            # before the registration are no longer trustworthy.
            self.result_cache.invalidate_all()
        return report

    # -- querying ------------------------------------------------------------------

    def bind(self, sql: str) -> algebra.LogicalPlan:
        return bind_sql(sql, self.database)

    def query_type(self, sql: str) -> QueryType:
        return classify_plan(self.bind(sql), self.database.catalog)

    def query(self, sql: str, cancel=None) -> QueryResult:
        """Answer a SQL query; runs Algorithm 1 first when DMd is involved."""
        result, _ = self.query_with_derivation(sql, cancel=cancel)
        return result

    def query_with_derivation(
        self, sql: str, session_id: int = 0, cancel=None
    ) -> tuple[QueryResult, DerivationReport]:
        """Like :meth:`query` but also returns the Algorithm-1 report.

        ``session_id`` attributes the query to a client session so the
        workload prefetcher can track per-session history (0 = the shared
        facade itself).  ``cancel`` is an optional
        :class:`~repro.engine.physical.CancelToken`: setting it aborts the
        execution with :class:`~repro.engine.errors.QueryCancelled` at the
        next operator entry or chunk boundary.
        """
        if self._closed:
            raise ExecutionError("database is closed")
        if cancel is not None:
            cancel.raise_if_cancelled()
        self._reconcile_shard_epoch()
        plan = self.bind(sql)
        # Derivation inserts into H; serialize it so concurrent queries for
        # overlapping windows cannot double-materialize (single-stage
        # execution afterwards is lock-free).
        with self._derivation_lock:
            derivation = self.views.ensure_for_query(plan)
        normalized = None
        generation = 0
        if self.result_cache is not None:
            if derivation.windows_inserted:
                # H just changed: cached answers that read derived
                # metadata may be stale.  (The repeat of *this* query is
                # unaffected — its own windows are now materialized, so
                # the next derivation inserts nothing.)
                self.result_cache.invalidate_tables(self.config.derived_tables)
            from .result_cache import normalize_plan

            started = time.perf_counter()
            # Captured before executing: if any invalidation lands while
            # the query runs, admit() below must reject the (potentially
            # stale) result instead of resurrecting it.
            generation = self.result_cache.generation
            normalized = normalize_plan(plan)
            served = self.result_cache.serve(normalized)
            if served is not None:
                table, outcome = served
                stats = ExecStats()
                if outcome == "exact":
                    stats.results_from_cache = 1
                else:
                    stats.results_subsumed = 1
                result = QueryResult(
                    table=table,
                    seconds=time.perf_counter() - started,
                    stats=stats,
                    result_cache=outcome,
                )
                self._account(result, derivation)
                result.seconds += derivation.seconds
                return result, derivation
        if self.lazy:
            result = self.compiler.execute_two_stage(plan, cancel=cancel)
        else:
            result = self.compiler.execute_single_stage(plan, cancel=cancel)
        if self.result_cache is not None and normalized is not None:
            self.result_cache.admit(
                normalized, result.table, result.seconds,
                generation=generation,
            )
        if self.prefetcher is not None and result.rewrite.required_uris:
            # Count which of this query's chunks an earlier prefetch had
            # warmed (plan-time residency — the query itself re-warms
            # whatever it loads), then kick off the next predictions.
            result.stats.chunks_prefetched = self.prefetcher.record_hits(
                result.rewrite.required_uris,
                result.rewrite.cached_uris,
                result.rewrite.loaded_uris,
            )
            self.prefetcher.note_query(
                session_id, result.rewrite.required_uris
            )
        self._account(result, derivation)
        result.seconds += derivation.seconds
        return result, derivation

    def _reconcile_shard_epoch(self) -> None:
        """Invalidate layout-dependent caches after a shard-layout change.

        A window insert (or any write) routed under one layout leaves
        cached results and warmed-URI bookkeeping that silently reference
        the old chunk placement; when the coordinator's epoch moves, both
        are dropped wholesale before the next query is served.
        """
        coordinator = self.database.shard_coordinator
        if coordinator is None:
            return
        epoch = coordinator.layout_epoch
        if epoch == self._shard_epoch_seen:
            return
        with self._stats_lock:
            if epoch == self._shard_epoch_seen:
                return
            self._shard_epoch_seen = epoch
        if self.result_cache is not None:
            self.result_cache.invalidate_all()
        if self.prefetcher is not None:
            self.prefetcher.invalidate_warmed()

    def session(self) -> "SommelierSession":
        """A per-client handle with its own stats over this shared database."""
        from .session import SommelierSession

        with self._stats_lock:
            self._session_counter += 1
            session_id = self._session_counter
        return SommelierSession(self, session_id)

    def session_pool(self, size: int = 4) -> "SessionPool":
        """A bounded pool of reusable sessions (the connection-pool facade)."""
        from .session import SessionPool

        return SessionPool(self, size)

    def _account(self, result: QueryResult, derivation: DerivationReport) -> None:
        delta = SommelierStats.delta_from(result, derivation)
        with self._stats_lock:
            self.stats.merge(delta)

    def approximate_query(
        self, sql: str, fraction: float = 0.2, seed: int = 20150413
    ):
        """Estimate a scalar aggregate from a chunk sample (Section VIII).

        Stage one runs exactly; only a ``fraction`` of the required chunks
        is loaded.  Returns an
        :class:`~repro.core.sampling.ApproximateResult`.
        """
        from .sampling import ChunkSampler

        plan = self.bind(sql)
        self.views.ensure_for_query(plan)
        sampler = ChunkSampler(
            self.database, self.config, self.compiler,
            fraction=fraction, seed=seed,
        )
        return sampler.approximate_query(sql)

    # -- inspection -----------------------------------------------------------------

    def explain(self, sql: str) -> str:
        """Compile-time view of a query: type, join order, MAL listing."""
        plan = self.bind(sql)
        query_type = classify_plan(plan, self.database.catalog)
        if self.lazy:
            compiled = self.compiler.compile(plan)
            return (
                f"query type: {query_type.value}\n"
                f"join order: {' -> '.join(compiled.join_order)}\n"
                f"two-stage: {compiled.two_stage}\n"
                f"MAL program:\n{compiled.program.listing()}"
            )
        ordered, join_order = self.compiler.compile_single_stage(plan)
        return (
            f"query type: {query_type.value}\n"
            f"join order: {' -> '.join(join_order)}\n"
            "single-stage plan:\n" + ordered.pretty()
        )

    def explain_chunks(self, sql: str) -> str:
        """Run-time view of stage two: the chunk plan, without fetching.

        Executes stage one and the runtime rewrite only, then renders each
        rewritten scan's :class:`~repro.engine.chunk_planner.ChunkPlan` —
        chunks pruned by statistics, the predicted serving tier and the
        cost-ordered fetch schedule.  Backs ``repro explain``.
        """
        if not self.lazy:
            return "eager database: no stage-two chunk plan (data is in D)"
        compiled = self.compiler.plan_stage_two(self.bind(sql))
        report = compiled.rewrite
        lines = [
            f"stage one named {len(report.required_uris)} candidate "
            f"chunk(s); {len(report.pruned_uris)} pruned by statistics"
        ]
        if not compiled.two_stage:
            lines.append("metadata-only query: stage two fetches no chunks")
        for chunk_plan in report.chunk_plans:
            lines.append(chunk_plan.describe())
        return "\n".join(lines)

    def counters_snapshot(self) -> dict:
        """Every engine/facade counter surface, one JSON-ready dict.

        The single serialization the monitoring surfaces share: ``repro
        cache --json`` prints exactly this, and the serving front end's
        ``/stats`` endpoint embeds it — so the two can never drift.  Keys
        are the recycler tiers (``memory``/``disk``) plus
        :meth:`planner_stats` sections and the facade's cumulative query
        counters.
        """
        snapshot = dict(self.database.recycler.tier_stats())
        snapshot.update(self.planner_stats())
        with self._stats_lock:
            snapshot["facade"] = {
                "queries_executed": self.stats.queries_executed,
                "derivations": self.stats.derivations,
                "windows_materialized": self.stats.windows_materialized,
                "chunks_loaded_total": self.stats.chunks_loaded_total,
                "result_cache_hits": self.stats.result_cache_hits,
                "result_cache_subsumed": self.stats.result_cache_subsumed,
                "shared_scan_attached": self.stats.shared_scan_attached,
                "chunks_shared": self.stats.chunks_shared,
                "shard_subplans": self.stats.shard_subplans,
                "chunks_from_shards": self.stats.chunks_from_shards,
            }
        return snapshot

    def planner_stats(self) -> dict:
        """Cumulative planner + prefetch counters (``repro cache``)."""
        from ..mseed import steim_kernels

        stats: dict = {
            "planner": self.database.chunk_planner.stats_snapshot(),
            "chunk_stats": {
                "chunks_tracked": len(self.database.chunk_stats),
                "chunks_enriched": sum(
                    1
                    for entry in self.database.chunk_stats.snapshot().values()
                    if entry.enriched
                ),
            },
            "shared_scan": self.database.shared_scans.stats_snapshot(),
            "decode_kernel": {
                "active": steim_kernels.active_kernel(),
                "available": list(steim_kernels.available_kernels()),
                "numba": steim_kernels.NUMBA_AVAILABLE,
            },
        }
        coordinator = self.database.shard_coordinator
        if coordinator is not None:
            stats["sharding"] = coordinator.stats_snapshot()
            # Each worker reports the kernel it actually decodes with, so a
            # parent/worker divergence (e.g. numba importable in only one
            # of them) is visible instead of silent.
            stats["decode_kernel"]["shard_workers"] = {
                str(shard): kernel
                for shard, kernel in sorted(
                    coordinator.worker_kernels().items()
                )
            }
        if self.prefetcher is not None:
            stats["prefetch"] = self.prefetcher.stats_snapshot()
        if self.result_cache is not None:
            stats["result_cache"] = self.result_cache.stats_snapshot()
        return stats

    def drop_caches(self) -> None:
        """Cold-start simulation (paper: restart server, flush buffers)."""
        self.database.drop_caches()

    def reset_derived_metadata(self) -> None:
        """Truncate H and forget its materialization state.

        Used by the data-to-insight experiments (Figure 8), where every
        measurement point must start from the state right after preparation
        — for non-eager_dmd databases that means an empty DMd view.
        """
        self.database.catalog.table("H").truncate()
        self.views = PartialViewManager(
            self.database, self.config, self.compiler, self.lazy
        )
        if self.result_cache is not None:
            # Entries that read H answered against the truncated state.
            self.result_cache.invalidate_tables(self.config.derived_tables)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the engine; persistent databases checkpoint first.

        Idempotent.  After close, :meth:`query` raises — reopen a
        persistent workdir with :meth:`open`.
        """
        if self._closed:
            return
        if self.prefetcher is not None:
            # Settle in-flight warm-ups so the checkpoint below flushes a
            # stable recycler image.
            self.prefetcher.wait_idle()
        if self.database.persistent:
            self.checkpoint()
        self._closed = True
        self.database.close()

    def __enter__(self) -> "SommelierDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
