"""SommelierDB — the public facade of the reproduced system.

"A system that, like a good sommelier, stores the bottles (actual data) in
the cellar (the file repository) but keeps the contents of the labels (the
metadata) in his head" (Section I).

A :class:`SommelierDB` wraps one engine :class:`~repro.engine.Database`
prepared in either *lazy* or *eager* mode:

* **lazy** — only given metadata is loaded (by the Registrar); queries run
  the two-stage model with run-time chunk rewriting, and derived metadata
  materializes incrementally via Algorithm 1;
* **eager** — actual data is already in ``D`` (one of the eager loading
  strategies put it there); queries run single-stage, still with the R1–R4
  join ordering; Algorithm 1 still computes missing DMd windows on demand,
  but over the in-database ``D``.

Typical use::

    db = SommelierDB.create()
    db.register_repository(FileRepository("/data/ingv"))
    result = db.query(\"\"\"
        SELECT AVG(D.sample_value) FROM dataview
        WHERE F.station = 'ISK' AND F.channel = 'BHE'
          AND D.sample_time >= '2010-01-12T22:15:00.000'
          AND D.sample_time <  '2010-01-12T22:15:02.000'
    \"\"\")
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..engine import algebra
from ..engine.database import Database
from ..engine.sql import bind_sql
from ..mseed.repository import FileRepository
from .partial_views import DerivationReport, PartialViewManager
from .query_types import QueryType, classify_plan
from .registrar import Registrar, RegistrarReport
from .schema import SommelierConfig, create_seismology_schema
from .two_stage import QueryResult, TwoStageCompiler, TwoStageOptions

__all__ = ["SommelierDB"]


@dataclass
class SommelierStats:
    """Cumulative facade-level counters."""

    queries_executed: int = 0
    derivations: int = 0
    windows_materialized: int = 0
    chunks_loaded_total: int = 0

    def merge(self, other: "SommelierStats") -> None:
        self.queries_executed += other.queries_executed
        self.derivations += other.derivations
        self.windows_materialized += other.windows_materialized
        self.chunks_loaded_total += other.chunks_loaded_total

    @classmethod
    def delta_from(
        cls, result: QueryResult, derivation: DerivationReport
    ) -> "SommelierStats":
        """The counter delta one answered query contributes.

        The single source of the accounting rule, shared by the facade's
        cumulative stats and per-session stats so they cannot drift.
        """
        delta = cls(queries_executed=1)
        if derivation.applicable:
            delta.derivations = 1
            delta.windows_materialized = derivation.windows_inserted
            delta.chunks_loaded_total = derivation.chunks_loaded
        delta.chunks_loaded_total += result.stats.chunks_loaded
        return delta


class SommelierDB:
    """One prepared database instance (lazy or eager).

    :meth:`query` is safe to call from multiple threads: the engine caches
    (recycler, buffer pool) are internally synchronized, Algorithm-1
    derivation is serialized by a facade-level lock (derived-metadata
    inserts are the one shared write path at query time), and the stats
    counters are updated under a mutex.  For per-client accounting use
    :meth:`session` (or a :class:`~repro.core.session.SessionPool`), which
    wraps this facade with per-session counters.
    """

    def __init__(
        self,
        database: Database,
        config: SommelierConfig,
        lazy: bool = True,
        options: TwoStageOptions | None = None,
    ) -> None:
        self.database = database
        self.config = config
        self.lazy = lazy
        self.options = options if options is not None else TwoStageOptions()
        self.compiler = TwoStageCompiler(database, config, self.options)
        self.views = PartialViewManager(database, config, self.compiler, lazy)
        self.stats = SommelierStats()
        self._stats_lock = threading.Lock()
        self._derivation_lock = threading.Lock()
        self._session_counter = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        workdir: str | None = None,
        lazy: bool = True,
        buffer_pool_bytes: int = 256 * 1024 * 1024,
        recycler_bytes: int = 1 << 30,
        recycler_policy: str = "lru",
        options: TwoStageOptions | None = None,
    ) -> "SommelierDB":
        """A fresh database with the seismology warehouse schema installed."""
        database = Database(
            workdir=workdir,
            buffer_pool_bytes=buffer_pool_bytes,
            recycler_bytes=recycler_bytes,
            recycler_policy=recycler_policy,
        )
        config = create_seismology_schema(database)
        return cls(database, config, lazy=lazy, options=options)

    def register_repository(
        self, repository: FileRepository, threads: int = 8
    ) -> RegistrarReport:
        """Eagerly load the given metadata of every chunk (Registrar)."""
        return Registrar(self.database, threads=threads).register(repository)

    # -- querying ------------------------------------------------------------------

    def bind(self, sql: str) -> algebra.LogicalPlan:
        return bind_sql(sql, self.database)

    def query_type(self, sql: str) -> QueryType:
        return classify_plan(self.bind(sql), self.database.catalog)

    def query(self, sql: str) -> QueryResult:
        """Answer a SQL query; runs Algorithm 1 first when DMd is involved."""
        result, _ = self.query_with_derivation(sql)
        return result

    def query_with_derivation(
        self, sql: str
    ) -> tuple[QueryResult, DerivationReport]:
        """Like :meth:`query` but also returns the Algorithm-1 report."""
        plan = self.bind(sql)
        # Derivation inserts into H; serialize it so concurrent queries for
        # overlapping windows cannot double-materialize (single-stage
        # execution afterwards is lock-free).
        with self._derivation_lock:
            derivation = self.views.ensure_for_query(plan)
        if self.lazy:
            result = self.compiler.execute_two_stage(plan)
        else:
            result = self.compiler.execute_single_stage(plan)
        self._account(result, derivation)
        result.seconds += derivation.seconds
        return result, derivation

    def session(self) -> "SommelierSession":
        """A per-client handle with its own stats over this shared database."""
        from .session import SommelierSession

        with self._stats_lock:
            self._session_counter += 1
            session_id = self._session_counter
        return SommelierSession(self, session_id)

    def session_pool(self, size: int = 4) -> "SessionPool":
        """A bounded pool of reusable sessions (the connection-pool facade)."""
        from .session import SessionPool

        return SessionPool(self, size)

    def _account(self, result: QueryResult, derivation: DerivationReport) -> None:
        delta = SommelierStats.delta_from(result, derivation)
        with self._stats_lock:
            self.stats.merge(delta)

    def approximate_query(
        self, sql: str, fraction: float = 0.2, seed: int = 20150413
    ):
        """Estimate a scalar aggregate from a chunk sample (Section VIII).

        Stage one runs exactly; only a ``fraction`` of the required chunks
        is loaded.  Returns an
        :class:`~repro.core.sampling.ApproximateResult`.
        """
        from .sampling import ChunkSampler

        plan = self.bind(sql)
        self.views.ensure_for_query(plan)
        sampler = ChunkSampler(
            self.database, self.config, self.compiler,
            fraction=fraction, seed=seed,
        )
        return sampler.approximate_query(sql)

    # -- inspection -----------------------------------------------------------------

    def explain(self, sql: str) -> str:
        """Compile-time view of a query: type, join order, MAL listing."""
        plan = self.bind(sql)
        query_type = classify_plan(plan, self.database.catalog)
        if self.lazy:
            compiled = self.compiler.compile(plan)
            return (
                f"query type: {query_type.value}\n"
                f"join order: {' -> '.join(compiled.join_order)}\n"
                f"two-stage: {compiled.two_stage}\n"
                f"MAL program:\n{compiled.program.listing()}"
            )
        ordered, join_order = self.compiler.compile_single_stage(plan)
        return (
            f"query type: {query_type.value}\n"
            f"join order: {' -> '.join(join_order)}\n"
            "single-stage plan:\n" + ordered.pretty()
        )

    def drop_caches(self) -> None:
        """Cold-start simulation (paper: restart server, flush buffers)."""
        self.database.drop_caches()

    def reset_derived_metadata(self) -> None:
        """Truncate H and forget its materialization state.

        Used by the data-to-insight experiments (Figure 8), where every
        measurement point must start from the state right after preparation
        — for non-eager_dmd databases that means an empty DMd view.
        """
        self.database.catalog.table("H").truncate()
        self.views = PartialViewManager(
            self.database, self.config, self.compiler, self.lazy
        )

    def close(self) -> None:
        self.database.close()

    def __enter__(self) -> "SommelierDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
