"""SommelierDB — the public facade of the reproduced system.

"A system that, like a good sommelier, stores the bottles (actual data) in
the cellar (the file repository) but keeps the contents of the labels (the
metadata) in his head" (Section I).

A :class:`SommelierDB` wraps one engine :class:`~repro.engine.Database`
prepared in either *lazy* or *eager* mode:

* **lazy** — only given metadata is loaded (by the Registrar); queries run
  the two-stage model with run-time chunk rewriting, and derived metadata
  materializes incrementally via Algorithm 1;
* **eager** — actual data is already in ``D`` (one of the eager loading
  strategies put it there); queries run single-stage, still with the R1–R4
  join ordering; Algorithm 1 still computes missing DMd windows on demand,
  but over the in-database ``D``.

Typical use::

    db = SommelierDB.create()
    db.register_repository(FileRepository("/data/ingv"))
    result = db.query(\"\"\"
        SELECT AVG(D.sample_value) FROM dataview
        WHERE F.station = 'ISK' AND F.channel = 'BHE'
          AND D.sample_time >= '2010-01-12T22:15:00.000'
          AND D.sample_time <  '2010-01-12T22:15:02.000'
    \"\"\")
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import algebra
from ..engine.database import Database
from ..engine.sql import bind_sql
from ..mseed.repository import FileRepository
from .partial_views import DerivationReport, PartialViewManager
from .query_types import QueryType, classify_plan
from .registrar import Registrar, RegistrarReport
from .schema import SommelierConfig, create_seismology_schema
from .two_stage import QueryResult, TwoStageCompiler, TwoStageOptions

__all__ = ["SommelierDB"]


@dataclass
class SommelierStats:
    """Cumulative facade-level counters."""

    queries_executed: int = 0
    derivations: int = 0
    windows_materialized: int = 0
    chunks_loaded_total: int = 0


class SommelierDB:
    """One prepared database instance (lazy or eager)."""

    def __init__(
        self,
        database: Database,
        config: SommelierConfig,
        lazy: bool = True,
        options: TwoStageOptions = TwoStageOptions(),
    ) -> None:
        self.database = database
        self.config = config
        self.lazy = lazy
        self.options = options
        self.compiler = TwoStageCompiler(database, config, options)
        self.views = PartialViewManager(database, config, self.compiler, lazy)
        self.stats = SommelierStats()

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        workdir: str | None = None,
        lazy: bool = True,
        buffer_pool_bytes: int = 256 * 1024 * 1024,
        recycler_bytes: int = 1 << 30,
        recycler_policy: str = "lru",
        options: TwoStageOptions = TwoStageOptions(),
    ) -> "SommelierDB":
        """A fresh database with the seismology warehouse schema installed."""
        database = Database(
            workdir=workdir,
            buffer_pool_bytes=buffer_pool_bytes,
            recycler_bytes=recycler_bytes,
            recycler_policy=recycler_policy,
        )
        config = create_seismology_schema(database)
        return cls(database, config, lazy=lazy, options=options)

    def register_repository(
        self, repository: FileRepository, threads: int = 8
    ) -> RegistrarReport:
        """Eagerly load the given metadata of every chunk (Registrar)."""
        return Registrar(self.database, threads=threads).register(repository)

    # -- querying ------------------------------------------------------------------

    def bind(self, sql: str) -> algebra.LogicalPlan:
        return bind_sql(sql, self.database)

    def query_type(self, sql: str) -> QueryType:
        return classify_plan(self.bind(sql), self.database.catalog)

    def query(self, sql: str) -> QueryResult:
        """Answer a SQL query; runs Algorithm 1 first when DMd is involved."""
        plan = self.bind(sql)
        derivation = self.views.ensure_for_query(plan)
        if self.lazy:
            result = self.compiler.execute_two_stage(plan)
        else:
            result = self.compiler.execute_single_stage(plan)
        self._account(result, derivation)
        result.seconds += derivation.seconds
        return result

    def query_with_derivation(
        self, sql: str
    ) -> tuple[QueryResult, DerivationReport]:
        """Like :meth:`query` but also returns the Algorithm-1 report."""
        plan = self.bind(sql)
        derivation = self.views.ensure_for_query(plan)
        if self.lazy:
            result = self.compiler.execute_two_stage(plan)
        else:
            result = self.compiler.execute_single_stage(plan)
        self._account(result, derivation)
        result.seconds += derivation.seconds
        return result, derivation

    def _account(self, result: QueryResult, derivation: DerivationReport) -> None:
        self.stats.queries_executed += 1
        if derivation.applicable:
            self.stats.derivations += 1
            self.stats.windows_materialized += derivation.windows_inserted
            self.stats.chunks_loaded_total += derivation.chunks_loaded
        self.stats.chunks_loaded_total += result.stats.chunks_loaded

    def approximate_query(
        self, sql: str, fraction: float = 0.2, seed: int = 20150413
    ):
        """Estimate a scalar aggregate from a chunk sample (Section VIII).

        Stage one runs exactly; only a ``fraction`` of the required chunks
        is loaded.  Returns an
        :class:`~repro.core.sampling.ApproximateResult`.
        """
        from .sampling import ChunkSampler

        plan = self.bind(sql)
        self.views.ensure_for_query(plan)
        sampler = ChunkSampler(
            self.database, self.config, self.compiler,
            fraction=fraction, seed=seed,
        )
        return sampler.approximate_query(sql)

    # -- inspection -----------------------------------------------------------------

    def explain(self, sql: str) -> str:
        """Compile-time view of a query: type, join order, MAL listing."""
        plan = self.bind(sql)
        query_type = classify_plan(plan, self.database.catalog)
        if self.lazy:
            compiled = self.compiler.compile(plan)
            return (
                f"query type: {query_type.value}\n"
                f"join order: {' -> '.join(compiled.join_order)}\n"
                f"two-stage: {compiled.two_stage}\n"
                f"MAL program:\n{compiled.program.listing()}"
            )
        ordered, join_order = self.compiler.compile_single_stage(plan)
        return (
            f"query type: {query_type.value}\n"
            f"join order: {' -> '.join(join_order)}\n"
            "single-stage plan:\n" + ordered.pretty()
        )

    def drop_caches(self) -> None:
        """Cold-start simulation (paper: restart server, flush buffers)."""
        self.database.drop_caches()

    def reset_derived_metadata(self) -> None:
        """Truncate H and forget its materialization state.

        Used by the data-to-insight experiments (Figure 8), where every
        measurement point must start from the state right after preparation
        — for non-eager_dmd databases that means an empty DMd view.
        """
        self.database.catalog.table("H").truncate()
        self.views = PartialViewManager(
            self.database, self.config, self.compiler, self.lazy
        )

    def close(self) -> None:
        self.database.close()

    def __enter__(self) -> "SommelierDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
