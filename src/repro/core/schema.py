"""The seismology warehouse schema of the paper (Section II-C).

Three base tables derived from the mSEED format [13]:

* ``F`` — per-file given metadata: URI plus sensor identification
  (network, station, location, channel) and technical characteristics
  (data_quality, encoding, byte_order).  Primary key ``file_id``.
* ``S`` — per-segment given metadata: start_time, sampling frequency,
  sample_count.  Primary key ``(file_id, segment_no)``; FK to ``F``.
* ``D`` — the actual data: one row per sample
  ``(file_id, segment_no, sample_time, sample_value)``; FKs to ``F``/``S``.

Plus the derived-metadata table ``H`` (hourly window summaries, Section
II-C) with primary key ``(window_station, window_channel,
window_start_ts)``, and the non-materialized views:

* ``gmdview`` — F ⋈ S (GMd only);
* ``dataview`` — F ⋈ S ⋈ D, the "universal table" of Query 1;
* ``windowmetaview`` — (F ⋈ S) ⋈ H (GMd + DMd, no actual data);
* ``windowdataview`` — F ⋈ S ⋈ D ⋈ H of Query 2, where H connects to
  F on (station, channel), to S via time-interval overlap, and to D by
  containment of sample_time in the hourly window.

:class:`SommelierConfig` also records the *time-bound inference* rule: a
predicate ``D.sample_time ≥ X`` implies that only segments whose
``[start_time, end_time)`` interval intersects the bound can contribute —
the rewrite that lets stage one narrow the chunk set by time (this is what
makes the paper's Query 1 touch "three files" instead of every file of the
station).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import algebra
from ..engine.catalog import ForeignKey, TableKind
from ..engine.database import Database
from ..engine.expressions import (
    Arithmetic,
    BooleanOp,
    Comparison,
    Expression,
    col,
    lit,
)
from ..engine.table import Schema
from ..engine.types import FLOAT64, INT64, STRING, TIMESTAMP

__all__ = [
    "HOUR_MS",
    "SommelierConfig",
    "create_seismology_schema",
    "segment_end_expression",
    "window_of_expression",
]

HOUR_MS = 3600 * 1000


def segment_end_expression() -> Expression:
    """Exclusive end timestamp of a segment, from S's metadata columns.

    ``S.start_time + S.sample_count * (1000 / S.frequency)`` — the segment
    span is implied metadata, derivable without touching actual data.
    """
    period_ms = Arithmetic("/", lit(1000.0), col("S.frequency"))
    span = Arithmetic("*", col("S.sample_count"), period_ms)
    return Arithmetic("+", col("S.start_time"), span)


def window_of_expression(time_column: str) -> Expression:
    """Floor a timestamp to its hourly window start: ``t - (t % hour)``."""
    remainder = Arithmetic("%", col(time_column), lit(HOUR_MS, INT64))
    return Arithmetic("-", col(time_column), remainder)


@dataclass(frozen=True)
class TimeBoundInference:
    """Transitive predicate inference from AD time to segment metadata.

    A conjunct ``<ad_time_column> op literal`` lets the compile-time
    optimizer add a metadata predicate on the segment span so stage one
    selects only chunks whose segments can contain qualifying samples.
    """

    ad_time_column: str  # e.g. "D.sample_time"
    segment_start_column: str  # e.g. "S.start_time"

    def infer(self, op: str, bound: Expression) -> Expression | None:
        """The implied metadata predicate for ``ad_time op bound``."""
        if op in ("<", "<="):
            return Comparison(op, col(self.segment_start_column), bound)
        if op in (">", ">="):
            return Comparison(">", segment_end_expression(), bound)
        if op == "=":
            return BooleanOp(
                "AND",
                [
                    Comparison("<=", col(self.segment_start_column), bound),
                    Comparison(">", segment_end_expression(), bound),
                ],
            )
        return None


@dataclass
class SommelierConfig:
    """Everything the paper-specific machinery needs to know about a schema."""

    uri_column: str = "F.uri"
    actual_tables: tuple[str, ...] = ("D",)
    time_inference: tuple[TimeBoundInference, ...] = field(
        default_factory=lambda: (
            TimeBoundInference("D.sample_time", "S.start_time"),
        )
    )
    derived_tables: tuple[str, ...] = ("H",)


def create_seismology_schema(database: Database) -> SommelierConfig:
    """Create F, S, D, H and all four views in ``database``'s catalog."""
    catalog = database.catalog

    catalog.create_table(
        "F",
        Schema.of(
            ("file_id", INT64),
            ("uri", STRING),
            ("network", STRING),
            ("station", STRING),
            ("location", STRING),
            ("channel", STRING),
            ("data_quality", STRING),
            ("encoding", INT64),
            ("byte_order", INT64),
        ),
        TableKind.METADATA,
        primary_key=("file_id",),
    )
    catalog.create_table(
        "S",
        Schema.of(
            ("file_id", INT64),
            ("segment_no", INT64),
            ("start_time", TIMESTAMP),
            ("frequency", FLOAT64),
            ("sample_count", INT64),
        ),
        TableKind.METADATA,
        primary_key=("file_id", "segment_no"),
        foreign_keys=[ForeignKey(("file_id",), "F", ("file_id",))],
    )
    catalog.create_table(
        "D",
        Schema.of(
            ("file_id", INT64),
            ("segment_no", INT64),
            ("sample_time", TIMESTAMP),
            ("sample_value", INT64),
        ),
        TableKind.ACTUAL,
        foreign_keys=[
            ForeignKey(("file_id",), "F", ("file_id",)),
            ForeignKey(
                ("file_id", "segment_no"), "S", ("file_id", "segment_no")
            ),
        ],
    )
    catalog.create_table(
        "H",
        Schema.of(
            ("window_station", STRING),
            ("window_channel", STRING),
            ("window_start_ts", TIMESTAMP),
            ("window_max_val", FLOAT64),
            ("window_min_val", FLOAT64),
            ("window_mean_val", FLOAT64),
            ("window_std_dev", FLOAT64),
        ),
        TableKind.DERIVED,
        primary_key=("window_station", "window_channel", "window_start_ts"),
    )

    def scan(name: str) -> algebra.Scan:
        return algebra.Scan(name, database.qualified_schema(name))

    def f_join_s() -> algebra.LogicalPlan:
        return algebra.Join(
            scan("F"),
            scan("S"),
            Comparison("=", col("F.file_id"), col("S.file_id")),
        )

    def d_join_condition() -> Expression:
        return BooleanOp(
            "AND",
            [
                Comparison("=", col("D.file_id"), col("S.file_id")),
                Comparison("=", col("D.segment_no"), col("S.segment_no")),
            ],
        )

    def h_join_f_condition() -> Expression:
        return BooleanOp(
            "AND",
            [
                Comparison("=", col("H.window_station"), col("F.station")),
                Comparison("=", col("H.window_channel"), col("F.channel")),
            ],
        )

    def h_overlap_s_condition() -> Expression:
        window_end = Arithmetic(
            "+", col("H.window_start_ts"), lit(HOUR_MS, INT64)
        )
        return BooleanOp(
            "AND",
            [
                Comparison("<", col("S.start_time"), window_end),
                Comparison(">", segment_end_expression(),
                           col("H.window_start_ts")),
            ],
        )

    def d_in_window_condition() -> Expression:
        window_end = Arithmetic(
            "+", col("H.window_start_ts"), lit(HOUR_MS, INT64)
        )
        return BooleanOp(
            "AND",
            [
                Comparison(">=", col("D.sample_time"),
                           col("H.window_start_ts")),
                Comparison("<", col("D.sample_time"), window_end),
            ],
        )

    catalog.create_view(
        "gmdview",
        f_join_s,
        "F ⋈ S: given metadata only",
    )
    catalog.create_view(
        "dataview",
        lambda: algebra.Join(f_join_s(), scan("D"), d_join_condition()),
        "F ⋈ S ⋈ D: the de-normalized universal table of Query 1",
    )
    catalog.create_view(
        "windowmetaview",
        lambda: algebra.Join(
            f_join_s(),
            scan("H"),
            BooleanOp(
                "AND",
                [h_join_f_condition(), h_overlap_s_condition()],
            ),
        ),
        "(F ⋈ S) ⋈ H: given plus derived metadata, no actual data",
    )

    def windowdataview() -> algebra.LogicalPlan:
        metadata_part = algebra.Join(
            f_join_s(),
            scan("H"),
            BooleanOp(
                "AND",
                [h_join_f_condition(), h_overlap_s_condition()],
            ),
        )
        return algebra.Join(
            metadata_part,
            scan("D"),
            BooleanOp("AND", [d_join_condition(), d_in_window_condition()]),
        )

    catalog.create_view(
        "windowdataview",
        windowdataview,
        "F ⋈ S ⋈ D ⋈ H: the de-normalized universal table of Query 2",
    )
    # Enable in-situ accessors to recognize the actual-data time attribute.
    database.in_situ_time_columns["D"] = "D.sample_time"
    return SommelierConfig()
