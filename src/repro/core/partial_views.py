"""Incremental metadata derivation — Algorithm 1 of the paper (Section IV).

The derived-metadata table ``H`` is a *partially materialized view*: hourly
summary statistics (max/min/mean/std of sample values) per (station,
channel, hour).  Eagerly materializing it means touching all actual data —
exactly what lazy loading avoids — so the paper derives DMd on the fly:

1. find the query's type (skip unless it refers to DMd: T2/T3/T5);
2. collect the predicates on the DMd table's *primary key* attributes;
3. enumerate the primary-key space those predicates select (``PSq``);
4. check it against the already-materialized key set (``PSm``);
5. the uncovered remainder is ``PSu = PSq − PSm``;
6. compute the DMd pointed to by ``PSu`` with an internal query (which
   itself runs two-stage and lazy-loads chunks) and insert it into ``H``;
7. proceed with the original query.

Per the paper, *all* window statistics are derived together for a window
("if we derive some metadata for a specific window, then we derive all
possible metadata for that window") since chunk loading dominates the cost.

Windows that turn out to hold no data are remembered as materialized
(an empty window is knowledge too — otherwise every later query would
re-scan the chunk range to rediscover the emptiness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..engine import algebra
from ..engine.database import Database
from ..engine.expressions import (
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    IsIn,
    Literal,
    col,
    conjuncts,
    lit,
)
from ..engine.table import Table, TableBuilder
from ..engine.types import TIMESTAMP as _TS
from .query_types import references_derived_metadata
from .schema import HOUR_MS, SommelierConfig, window_of_expression

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .two_stage import TwoStageCompiler

__all__ = ["KeySpace", "DerivationReport", "PartialViewManager"]


@dataclass
class KeySpace:
    """Step 2/3 outcome: constraints and the enumerated PSq."""

    stations: set[str] | None  # None = unconstrained
    channels: set[str] | None
    ts_low: int | None  # inclusive, hour-aligned after enumeration
    ts_high: int | None  # exclusive
    keys: list[tuple[str, str, int]] = field(default_factory=list)


@dataclass
class DerivationReport:
    """What one Algorithm-1 invocation did."""

    applicable: bool = False
    psq_size: int = 0
    psm_overlap: int = 0
    psu_size: int = 0
    windows_inserted: int = 0
    derivation_queries: int = 0
    seconds: float = 0.0
    chunks_loaded: int = 0


class PartialViewManager:
    """Owns the materialization state of the H view for one database."""

    def __init__(
        self,
        database: Database,
        config: SommelierConfig,
        compiler: "TwoStageCompiler",
        lazy: bool,
    ) -> None:
        self.database = database
        self.config = config
        self.compiler = compiler
        self.lazy = lazy
        self._materialized: set[tuple[str, str, int]] = set()
        self.sync_from_table()

    # -- state -------------------------------------------------------------

    def sync_from_table(self) -> None:
        """Adopt keys already present in H (e.g. after eager derivation)."""
        h_table = self.database.catalog.table("H")
        image = h_table.data
        if image.num_rows == 0:
            return
        stations = image.column("window_station").values
        channels = image.column("window_channel").values
        starts = image.column("window_start_ts").values
        for station, channel, start in zip(stations, channels, starts):
            self._materialized.add((station, channel, int(start)))

    @property
    def materialized_keys(self) -> set[tuple[str, str, int]]:
        return set(self._materialized)

    # -- Algorithm 1 ---------------------------------------------------------

    def ensure_for_query(self, plan: algebra.LogicalPlan) -> DerivationReport:
        """Run Algorithm 1 for one bound query plan."""
        report = DerivationReport()
        started = time.perf_counter()
        # Step 1: type check.
        if not references_derived_metadata(plan, self.database.catalog):
            report.seconds = time.perf_counter() - started
            return report
        report.applicable = True
        # Steps 2-3: predicates on PK attributes -> enumerate PSq.
        space = self._enumerate_key_space(self._collect_predicates(plan))
        report.psq_size = len(space.keys)
        # Steps 4-5: covering test against PSm.
        unavailable = [k for k in space.keys if k not in self._materialized]
        report.psm_overlap = report.psq_size - len(unavailable)
        report.psu_size = len(unavailable)
        # Step 6: compute and insert what PSu points to.
        if unavailable:
            report.windows_inserted, report.derivation_queries, loaded = (
                self._derive(unavailable)
            )
            report.chunks_loaded = loaded
            self._materialized.update(unavailable)
        report.seconds = time.perf_counter() - started
        return report

    def derive_all(self) -> DerivationReport:
        """Eager DMd computation: materialize the entire key space."""
        report = DerivationReport()
        report.applicable = True
        started = time.perf_counter()
        space = self._enumerate_key_space([])
        report.psq_size = len(space.keys)
        unavailable = [k for k in space.keys if k not in self._materialized]
        report.psu_size = len(unavailable)
        if unavailable:
            report.windows_inserted, report.derivation_queries, loaded = (
                self._derive(unavailable)
            )
            report.chunks_loaded = loaded
            self._materialized.update(unavailable)
        report.seconds = time.perf_counter() - started
        return report

    # -- Step 2: predicate collection ---------------------------------------------

    def _collect_predicates(self, plan: algebra.LogicalPlan) -> list[Expression]:
        """All conjuncts anywhere in the plan referencing H's PK attributes."""
        collected: list[Expression] = []

        def visit(node: algebra.LogicalPlan) -> None:
            if isinstance(node, algebra.Select):
                collected.extend(conjuncts(node.predicate))
            if isinstance(node, algebra.Join) and node.condition is not None:
                collected.extend(conjuncts(node.condition))
            for child in node.children():
                visit(child)

        visit(plan)
        return collected

    # -- Step 3: PSq enumeration -----------------------------------------------------

    def _enumerate_key_space(
        self, predicates: Iterable[Expression]
    ) -> KeySpace:
        predicates = list(predicates)
        # Equality join conditions (e.g. H.window_station = F.station) make
        # constraints transitive: a literal bound on any column of an
        # equivalence class constrains the PK attribute too.
        classes = _column_equivalence_classes(predicates)
        station_cols = _aliases_of("H.window_station", classes)
        channel_cols = _aliases_of("H.window_channel", classes)
        ts_cols = _aliases_of("H.window_start_ts", classes)

        stations: set[str] | None = None
        channels: set[str] | None = None
        ts_low: int | None = None
        ts_high: int | None = None
        for predicate in predicates:
            for name in station_cols:
                stations = _merge(stations, _string_constraint(predicate, name))
            for name in channel_cols:
                channels = _merge(channels, _string_constraint(predicate, name))
            for name in ts_cols:
                low, high = _time_constraint(predicate, name)
                if low is not None:
                    ts_low = low if ts_low is None else max(ts_low, low)
                if high is not None:
                    ts_high = high if ts_high is None else min(ts_high, high)

        pairs = self._station_channel_pairs(stations, channels)
        low_ms, high_ms = self._clip_to_data_span(ts_low, ts_high)
        keys: list[tuple[str, str, int]] = []
        if low_ms is not None and high_ms is not None:
            hour = low_ms - (low_ms % HOUR_MS)
            while hour < high_ms:
                for station, channel in pairs:
                    keys.append((station, channel, hour))
                hour += HOUR_MS
        return KeySpace(stations, channels, low_ms, high_ms, keys)

    def _station_channel_pairs(
        self, stations: set[str] | None, channels: set[str] | None
    ) -> list[tuple[str, str]]:
        """Distinct (station, channel) pairs of F matching the constraints.

        The DMd key domain is anchored in the given metadata: windows can
        only exist for sensors that exist.
        """
        f_data = self.database.catalog.table("F").data
        station_col = f_data.column("station").values
        channel_col = f_data.column("channel").values
        pairs: dict[tuple[str, str], None] = {}
        for station, channel in zip(station_col, channel_col):
            if stations is not None and station not in stations:
                continue
            if channels is not None and channel not in channels:
                continue
            pairs.setdefault((station, channel), None)
        return sorted(pairs)

    def _clip_to_data_span(
        self, ts_low: int | None, ts_high: int | None
    ) -> tuple[int | None, int | None]:
        """Intersect the queried range with the data availability from S."""
        s_data = self.database.catalog.table("S").data
        if s_data.num_rows == 0:
            return None, None
        starts = s_data.column("start_time").values
        counts = s_data.column("sample_count").values
        freqs = s_data.column("frequency").values
        ends = starts + (counts * (1000.0 / freqs)).astype("int64")
        data_low = int(starts.min())
        data_high = int(ends.max())
        low = data_low if ts_low is None else max(ts_low, data_low)
        high = data_high if ts_high is None else min(ts_high, data_high)
        if low >= high:
            return None, None
        return low, high

    # -- Step 6: derivation --------------------------------------------------------

    def _derive(
        self, unavailable: list[tuple[str, str, int]]
    ) -> tuple[int, int, int]:
        """Compute and insert the DMd rows pointed to by PSu.

        Contiguous hours per (station, channel) coalesce into one derivation
        query so chunk loading amortizes.  Returns (rows inserted, number of
        derivation queries run, chunks loaded).
        """
        inserted = 0
        queries = 0
        chunks_loaded = 0
        for station, channel, lo, hi in _coalesce_runs(unavailable):
            plan = self._derivation_plan(station, channel, lo, hi)
            if self.lazy:
                result = self.compiler.execute_two_stage(plan)
                chunks_loaded += result.stats.chunks_loaded
            else:
                result = self.compiler.execute_single_stage(plan)
            rows = self._as_h_rows(result.table)
            if rows.num_rows:
                self.database.insert("H", rows)
                inserted += rows.num_rows
            queries += 1
        return inserted, queries, chunks_loaded

    def _derivation_plan(
        self, station: str, channel: str, lo: int, hi: int
    ) -> algebra.LogicalPlan:
        """The internal derivation query (runs two-stage on lazy databases).

        Shape::

            Aggregate(group by station, channel, window;
                      MAX/MIN/AVG/STD of sample_value)
              Project(station, channel, window := t - t % hour, value)
                σ(station = :s AND channel = :c AND lo ≤ sample_time < hi)
                  (F ⋈ S ⋈ D)
        """
        view_plan = self.database.catalog.view("dataview").plan_factory()
        predicate_parts = [
            Comparison("=", col("F.station"), lit(station)),
            Comparison("=", col("F.channel"), lit(channel)),
            Comparison(">=", col("D.sample_time"), Literal(lo, _TS)),
            Comparison("<", col("D.sample_time"), Literal(hi, _TS)),
        ]
        selected = algebra.Select(
            view_plan,
            _conjoin_all(predicate_parts),
        )
        as_float = Arithmetic("*", col("D.sample_value"), lit(1.0))
        projected = algebra.Project(
            selected,
            [
                ("window_station", col("F.station")),
                ("window_channel", col("F.channel")),
                ("window_start_ts", window_of_expression("D.sample_time")),
                ("value", as_float),
            ],
        )
        return algebra.Aggregate(
            projected,
            ["window_station", "window_channel", "window_start_ts"],
            [
                algebra.AggregateSpec("MAX", col("value"), "window_max_val"),
                algebra.AggregateSpec("MIN", col("value"), "window_min_val"),
                algebra.AggregateSpec("AVG", col("value"), "window_mean_val"),
                algebra.AggregateSpec("STD", col("value"), "window_std_dev"),
            ],
        )

    def _as_h_rows(self, computed: Table) -> Table:
        """Align a derivation result with H's physical schema."""
        builder = TableBuilder(self.database.catalog.table("H").schema)
        builder.append_columns(
            [
                computed.column("window_station").values,
                computed.column("window_channel").values,
                computed.column("window_start_ts").values,
                computed.column("window_max_val").values,
                computed.column("window_min_val").values,
                computed.column("window_mean_val").values,
                computed.column("window_std_dev").values,
            ]
        )
        return builder.finish()


# -- predicate matching helpers ---------------------------------------------------


def _column_equivalence_classes(
    predicates: Iterable[Expression],
) -> list[set[str]]:
    """Equivalence classes of columns connected by ``col = col`` conjuncts."""
    classes: list[set[str]] = []
    for predicate in predicates:
        if (
            isinstance(predicate, Comparison)
            and predicate.op == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
        ):
            a, b = predicate.left.name, predicate.right.name
            hits = [c for c in classes if a in c or b in c]
            merged = {a, b}
            for hit in hits:
                merged |= hit
                classes.remove(hit)
            classes.append(merged)
    return classes


def _aliases_of(column_name: str, classes: list[set[str]]) -> set[str]:
    """All columns known equal to ``column_name`` (including itself)."""
    for cls in classes:
        if column_name in cls:
            return set(cls)
    return {column_name}


def _string_constraint(
    predicate: Expression, column_name: str
) -> set[str] | None:
    """Extract {allowed values} from ``col = 'x'`` or ``col IN (...)``."""
    if isinstance(predicate, Comparison) and predicate.op == "=":
        for comparison in (predicate, predicate.flipped()):
            if (
                isinstance(comparison.left, ColumnRef)
                and comparison.left.name == column_name
                and isinstance(comparison.right, Literal)
            ):
                return {comparison.right.value}
    if (
        isinstance(predicate, IsIn)
        and isinstance(predicate.operand, ColumnRef)
        and predicate.operand.name == column_name
    ):
        return set(predicate.options)
    return None


def _time_constraint(
    predicate: Expression, column_name: str
) -> tuple[int | None, int | None]:
    """Extract (low, high) bounds from range comparisons on the column."""
    if not isinstance(predicate, Comparison):
        return None, None
    for comparison in (predicate, predicate.flipped()):
        if (
            isinstance(comparison.left, ColumnRef)
            and comparison.left.name == column_name
            and isinstance(comparison.right, Literal)
        ):
            bound = int(comparison.right.value)
            if comparison.op in (">=",):
                return bound, None
            if comparison.op == ">":
                return bound + 1, None
            if comparison.op == "<":
                return None, bound
            if comparison.op == "<=":
                return None, bound + 1
            if comparison.op == "=":
                return bound, bound + 1
    return None, None


def _merge(current: set[str] | None, new: set[str] | None) -> set[str] | None:
    if new is None:
        return current
    if current is None:
        return set(new)
    return current & new


def _coalesce_runs(
    keys: list[tuple[str, str, int]]
) -> list[tuple[str, str, int, int]]:
    """Group keys by (station, channel) and merge contiguous hours.

    Returns ``(station, channel, lo_ms, hi_ms)`` tuples with hi exclusive.
    """
    by_pair: dict[tuple[str, str], list[int]] = {}
    for station, channel, hour in keys:
        by_pair.setdefault((station, channel), []).append(hour)
    runs: list[tuple[str, str, int, int]] = []
    for (station, channel), hours in sorted(by_pair.items()):
        hours.sort()
        run_start = hours[0]
        previous = hours[0]
        for hour in hours[1:]:
            if hour == previous + HOUR_MS:
                previous = hour
                continue
            runs.append((station, channel, run_start, previous + HOUR_MS))
            run_start = hour
            previous = hour
        runs.append((station, channel, run_start, previous + HOUR_MS))
    return runs


def _conjoin_all(parts: list[Expression]) -> Expression:
    from ..engine.expressions import conjoin

    result = conjoin(parts)
    assert result is not None
    return result
