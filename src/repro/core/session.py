"""Sessions and connection pooling for concurrent query serving.

The paper's setting — a BDMS serving "heavy traffic" over a shared file
repository — needs more than a thread-safe engine: each client wants its
own accounting while catalog, Recycler and buffer pool stay shared.  A
:class:`SommelierSession` is that per-client handle; a :class:`SessionPool`
is the bounded connection-pool facade a server front end would check
sessions out of.

Typical use::

    db, _ = prepare("lazy", repository)
    pool = db.session_pool(size=8)

    def worker(sql: str):
        with pool.session() as session:
            return session.query(sql)

All session state is thread-confined (one session must not be used by two
threads at once — exactly the contract of a DB-API connection); everything
shared underneath is synchronized by the engine.
"""

from __future__ import annotations

import queue
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from ..engine.errors import ExecutionError
from ..engine.physical import ExecStats
from ..util.lock_sanitizer import make_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .partial_views import DerivationReport
    from .sommelier import SommelierDB
    from .two_stage import QueryResult

__all__ = ["SommelierSession", "SessionPool"]


class SommelierSession:
    """One client's handle on a shared :class:`SommelierDB`.

    Queries execute on the shared engine (one compiler, one recycler, one
    buffer pool); the session accumulates its own
    :class:`~repro.core.sommelier.SommelierStats` and
    :class:`~repro.engine.physical.ExecStats` so per-client cost is
    attributable even when many sessions run concurrently.
    """

    def __init__(self, db: "SommelierDB", session_id: int) -> None:
        from .sommelier import SommelierStats

        self.db = db
        self.session_id = session_id
        self.stats = SommelierStats()
        self.exec_stats = ExecStats()
        self._closed = False

    # -- querying ----------------------------------------------------------

    def query(self, sql: str, cancel=None) -> "QueryResult":
        result, _ = self.query_with_derivation(sql, cancel=cancel)
        return result

    def query_with_derivation(
        self, sql: str, cancel=None
    ) -> tuple["QueryResult", "DerivationReport"]:
        if self._closed:
            raise ExecutionError(
                f"session {self.session_id} is closed"
            )
        # The session id reaches the facade so the workload prefetcher can
        # keep per-session history (which client is walking forward where).
        result, derivation = self.db.query_with_derivation(
            sql, session_id=self.session_id, cancel=cancel
        )
        self._accumulate(result, derivation)
        return result, derivation

    def explain(self, sql: str) -> str:
        return self.db.explain(sql)

    def cache_stats(self) -> dict:
        """Per-tier recycler statistics of the shared engine.

        The tiers are shared across sessions (that is the point of the
        recycler); this is the monitoring hook a server front end polls,
        and what ``repro cache`` prints.
        """
        return self.db.database.recycler.tier_stats()

    def _accumulate(
        self, result: "QueryResult", derivation: "DerivationReport"
    ) -> None:
        from .sommelier import SommelierStats

        self.stats.merge(SommelierStats.delta_from(result, derivation))
        self.exec_stats.merge(result.stats)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def reset_stats(self) -> None:
        """Zero the per-session counters (pool reuse between clients)."""
        from .sommelier import SommelierStats

        self.stats = SommelierStats()
        self.exec_stats = ExecStats()

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "SommelierSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SessionPool:
    """A bounded pool of reusable sessions over one shared database.

    ``size`` caps how many sessions are ever live at once; checking one out
    blocks when all are busy, which doubles as admission control for a
    server front end.  Sessions are reused across checkouts with their
    counters reset, DB-API-connection-pool style.
    """

    # Machine-checked (repro analyze, lock-discipline): the size cap only
    # holds if creation/checkout accounting is serialized.
    _GUARDED = {"_lock": ("_created", "_checked_out")}

    def __init__(self, db: "SommelierDB", size: int = 4) -> None:
        if size <= 0:
            raise ExecutionError("session pool size must be positive")
        self.db = db
        self.size = size
        self._idle: "queue.LifoQueue[SommelierSession]" = queue.LifoQueue()
        self._created = 0
        self._checked_out = 0
        self._lock = make_lock("SessionPool._lock")
        self._closed = False

    def acquire(self, timeout: float | None = None) -> SommelierSession:
        """Check a session out; blocks up to ``timeout`` when all are busy."""
        if self._closed:
            raise ExecutionError("session pool is closed")
        try:
            session = self._idle.get_nowait()
        except queue.Empty:
            session = None
        if session is None:
            with self._lock:
                if self._created < self.size:
                    self._created += 1
                    session = self.db.session()
        if session is None:
            try:
                session = self._idle.get(timeout=timeout)
            except queue.Empty:
                raise ExecutionError(
                    f"no session became free within {timeout}s "
                    f"(pool size {self.size})"
                ) from None
        with self._lock:
            self._checked_out += 1
        return session

    def try_acquire(self) -> SommelierSession | None:
        """Non-blocking checkout: a session, or None when all are busy.

        The admission-control hook for an async front end: the event loop
        must never park a coroutine inside the blocking :meth:`acquire`, so
        saturation is answered with backpressure instead of queuing here.
        """
        if self._closed:
            raise ExecutionError("session pool is closed")
        try:
            session = self._idle.get_nowait()
        except queue.Empty:
            session = None
        if session is None:
            with self._lock:
                if self._created < self.size:
                    self._created += 1
                    session = self.db.session()
        if session is None:
            return None
        with self._lock:
            self._checked_out += 1
        return session

    def stats(self) -> dict[str, int]:
        """Checkout-level counters (what a ``/stats`` endpoint reports)."""
        with self._lock:
            checked_out = self._checked_out
            created = self._created
        return {
            "size": self.size,
            "created": created,
            "in_use": checked_out,
            "idle": created - checked_out,
        }

    def release(self, session: SommelierSession) -> None:
        """Return a checked-out session; its counters are reset for reuse.

        Returning to a closed pool closes the session instead of re-queueing
        it — closure is terminal even for sessions in flight at close time.
        A session the client closed itself is discarded (its slot frees up
        for a fresh session) rather than re-queued unusable.
        """
        with self._lock:
            if self._checked_out > 0:
                self._checked_out -= 1
        if self._closed:
            session.close()
            return
        if session.closed:
            # Replace rather than just discard: a waiter blocked on the
            # idle queue would otherwise starve with capacity to spare.
            self._idle.put(self.db.session())
            return
        session.reset_stats()
        self._idle.put(session)

    @contextmanager
    def session(
        self, timeout: float | None = None
    ) -> Iterator[SommelierSession]:
        checked_out = self.acquire(timeout=timeout)
        try:
            yield checked_out
        finally:
            self.release(checked_out)

    def close(self) -> None:
        self._closed = True
        while True:
            try:
                self._idle.get_nowait().close()
            except queue.Empty:
                break

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
