"""The two-stage query execution model (paper Section III).

The Compile-time Optimizer here does what Section V-2 describes for
MonetDB: it splits the query plan into ``Q = Qf ⋈ Qs`` — ``Qf`` being the
highest branch whose leaves are all metadata tables — orders the joins with
rules R1–R4, and emits a MAL program of the shape::

    [00] qf     := eval(Qf)                 # stage one: metadata only
    [01] call runtime-optimizer(qf)         # rewrite scan(a) per rule (1)
    [02] result := eval(Qs)                 # stage two: lazy-loaded data
    [03] return result

It also performs *time-bound inference*: selection predicates on the
actual-data time attribute imply bounds on segment metadata
(``S.start_time`` / computed segment end), which is how stage one narrows
the chunk set by time.

For eagerly loaded databases the same join ordering is used but the plan
runs in a single stage (no rewrite — the data is already in ``D``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..engine import algebra
from ..engine.database import Database
from ..engine.errors import PlanError
from ..engine.expressions import Expression
from ..engine.join_graph import QueryGraph, build_query_graph
from ..engine.mal import (
    CallRuntimeOptimizer,
    EvalPlan,
    MalProgram,
    ReturnValue,
)
from ..engine.optimizer import optimize as standard_optimize
from ..engine.predicates import oriented_literal_comparisons
from ..engine.physical import (
    CancelToken,
    ExecStats,
    ExecutionContext,
    drop_hidden_columns,
    execute_plan,
)
from ..engine.table import Table
from .coloring import ColoredGraph, RuleSet, order_joins
from .runtime_rewrite import RewriteReport, make_runtime_optimizer
from .schema import SommelierConfig

__all__ = ["TwoStageOptions", "QueryResult", "CompiledQuery", "TwoStageCompiler"]

_JOIN_BLOCK_NODES = (algebra.Scan, algebra.Select, algebra.Join)


@dataclass(frozen=True)
class TwoStageOptions:
    """Knobs for the compile-time and run-time optimizers.

    ``io_threads`` sizes the shared decode pool of the morsel-style
    stage-two pipeline (1 = the serial per-chunk union).  It defaults to
    ``None``, which inherits ``parallel_threads`` — the historical knob
    kept for compatibility with existing callers.

    ``executor`` picks where parallel stage-two decodes run: ``"thread"``
    (the in-process pool; GIL-bound on CPU-heavy decode) or ``"process"``
    (a spawn-based worker pool over the shared on-disk chunk store; decode
    CPU scales with cores).

    ``prune_chunks`` lets the runtime optimizer drop chunks whose min/max
    statistics cannot satisfy the query's literal predicates before any
    fetch happens (results are unaffected by construction).

    ``prefetch`` enables the facade-level workload-aware prefetcher: after
    each query it predicts the session's next chunks from its query
    history and warms the recycler asynchronously; ``prefetch_depth`` caps
    how far ahead it reaches.

    ``shared_scan`` routes stage-two chunk scans through the database's
    :class:`~repro.engine.shared_scan.SharedScanScheduler`: concurrent
    queries whose chunk plans overlap attach to one scan pass per table
    and each chunk is materialized once per wave (results stay
    bit-identical to private scans).  Off by default — single-client
    benchmarks must measure private-scan cost.

    ``result_cache`` enables the facade-level semantic result recycler
    (:mod:`repro.core.result_cache`): finished query results are cached by
    normalized plan fingerprint, exact repeats skip both stages, and a
    cached result whose bounds cover a new query answers it by
    re-filtering; ``result_cache_bytes`` is its budget.  Off by default —
    the experiments that measure stage costs must re-execute.

    ``shards`` > 0 routes stage-two chunk scans through the scatter-gather
    coordinator (:mod:`repro.engine.sharding`): the catalog is partitioned
    by (station, time-bucket) hash into that many shard worker processes,
    each owning its own chunk store + recycler, and per-shard sub-plans run
    in parallel with results merged bit-identically to serial order.  When
    set it overrides ``executor``/``io_threads`` for chunk scans, and it
    cannot be combined with ``shared_scan`` (both reorganize the same scan
    dispatch).  0 (the default) disables sharding.
    """

    EXECUTORS = ("thread", "process")

    rules: RuleSet = field(default_factory=RuleSet)
    parallel_threads: int = 4
    io_threads: int | None = None
    executor: str = "thread"
    push_selections_into_chunks: bool = True
    infer_time_bounds: bool = True
    prune_chunks: bool = True
    shared_scan: bool = False
    prefetch: bool = False
    prefetch_depth: int = 2
    result_cache: bool = False
    result_cache_bytes: int = 256 * 1024 * 1024
    shards: int = 0

    def __post_init__(self) -> None:
        if self.executor not in self.EXECUTORS:
            raise PlanError(
                f"unknown stage-two executor {self.executor!r}; "
                f"choose from {self.EXECUTORS}"
            )
        if self.shards < 0:
            raise PlanError("shards must be >= 0 (0 disables sharding)")
        if self.shards and self.shared_scan:
            raise PlanError(
                "shared_scan and shards cannot be combined: both take over "
                "stage-two chunk dispatch"
            )

    @property
    def effective_io_threads(self) -> int:
        return (
            self.parallel_threads if self.io_threads is None else self.io_threads
        )


@dataclass
class QueryResult:
    """A delivered query answer plus everything the experiments measure."""

    table: Table
    seconds: float
    stage_one_seconds: float = 0.0
    stage_two_seconds: float = 0.0
    stats: ExecStats = field(default_factory=ExecStats)
    rewrite: RewriteReport = field(default_factory=RewriteReport)
    join_order: list[str] = field(default_factory=list)
    two_stage: bool = False
    # How the result recycler served this query: "exact", "subsumed", or
    # None when it executed normally.
    result_cache: str | None = None


@dataclass
class CompiledQuery:
    """A compiled MAL program plus compile-time artifacts."""

    program: MalProgram
    qf_plan: algebra.LogicalPlan | None
    qs_plan: algebra.LogicalPlan
    rewrite: RewriteReport
    join_order: list[str]
    two_stage: bool


def _is_join_block(plan: algebra.LogicalPlan) -> bool:
    if not isinstance(plan, _JOIN_BLOCK_NODES):
        return False
    return all(_is_join_block(child) for child in plan.children())


def _split_upper_chain(
    plan: algebra.LogicalPlan,
) -> tuple[Callable[[algebra.LogicalPlan], algebra.LogicalPlan], algebra.LogicalPlan]:
    """Separate the pipeline operators above the join block.

    Returns ``(rebuild, join_block)`` where ``rebuild(new_block)``
    re-applies the upper operators over a replacement join block.
    """
    spine: list[algebra.LogicalPlan] = []
    node = plan
    while not _is_join_block(node):
        children = node.children()
        if len(children) != 1:
            raise PlanError(
                f"cannot split plan: {type(node).__name__} above the join "
                "block is not unary"
            )
        spine.append(node)
        node = children[0]

    def rebuild(new_block: algebra.LogicalPlan) -> algebra.LogicalPlan:
        current = new_block
        for upper in reversed(spine):
            if isinstance(upper, algebra.Project):
                current = algebra.Project(current, upper.outputs)
            elif isinstance(upper, algebra.Aggregate):
                current = algebra.Aggregate(
                    current, upper.group_by, upper.aggregates
                )
            elif isinstance(upper, algebra.Sort):
                current = algebra.Sort(current, upper.keys)
            elif isinstance(upper, algebra.Limit):
                current = algebra.Limit(current, upper.count)
            elif isinstance(upper, algebra.Distinct):
                current = algebra.Distinct(current)
            elif isinstance(upper, algebra.Select):
                current = algebra.Select(current, upper.predicate)
            else:
                raise PlanError(
                    f"unsupported upper-chain node {type(upper).__name__}"
                )
        return current

    return rebuild, node


def _infer_time_bound_predicates(
    graph: QueryGraph, config: SommelierConfig
) -> int:
    """Add segment-span predicates implied by AD time predicates (R-extra).

    Returns the number of predicates added.  Only literal bounds are
    considered; both orientations (column op literal / literal op column)
    are handled.
    """
    added = 0
    for inference in config.time_inference:
        target_table = inference.segment_start_column.split(".", 1)[0]
        if target_table not in graph.vertices:
            continue
        sources: list[tuple[str, Expression]] = []
        ad_table = inference.ad_time_column.split(".", 1)[0]
        if ad_table in graph.vertices:
            for predicate in graph.vertices[ad_table].predicates:
                sources.extend(
                    oriented_literal_comparisons(
                        predicate, inference.ad_time_column
                    )
                )
        for op, bound in sources:
            implied = inference.infer(op, bound)
            if implied is not None:
                graph.add_predicate(implied)
                added += 1
    return added


class TwoStageCompiler:
    """Compile-time optimizer producing two-stage MAL programs."""

    def __init__(
        self,
        database: Database,
        config: SommelierConfig,
        options: TwoStageOptions | None = None,
    ) -> None:
        self.database = database
        self.config = config
        self.options = options if options is not None else TwoStageOptions()

    # -- compilation -----------------------------------------------------------

    def compile(self, plan: algebra.LogicalPlan) -> CompiledQuery:
        """Split, order and emit the MAL program for a bound plan."""
        plan = standard_optimize(plan)
        rebuild, join_block = _split_upper_chain(plan)
        graph = build_query_graph(join_block)
        if self.options.infer_time_bounds:
            _infer_time_bound_predicates(graph, self.config)
        red_tables = self.database.catalog.metadata_table_names()
        colored = ColoredGraph(graph, red_tables)
        ordered = order_joins(
            colored, self.database.table_num_rows, self.options.rules
        )

        report = RewriteReport()
        if not colored.black_vertices:
            # Metadata-only query (T1/T2/T3): stage one answers everything,
            # but we keep the uniform program shape — the runtime optimizer
            # simply finds no actual-data scans to rewrite.
            qf_plan = ordered.plan
            qs_plan = rebuild(
                algebra.ResultScan("qf", qf_plan.schema)
            )
        elif ordered.metadata_branch is None:
            # AD-only query (outside the paper's focus, Section II-B): no
            # metadata branch exists; stage one is a unit plan and the
            # runtime optimizer falls back to loading every chunk.
            qf_plan = algebra.EmptyRelation()
            qs_plan = rebuild(ordered.plan)
        else:
            qf_plan = ordered.metadata_branch
            qs_join = _replace_subtree(
                ordered.plan,
                ordered.metadata_branch,
                algebra.ResultScan("qf", ordered.metadata_branch.schema),
            )
            qs_plan = rebuild(qs_join)

        callback = make_runtime_optimizer(
            self.database,
            self.config,
            report,
            io_threads=self.options.effective_io_threads,
            executor=self.options.executor,
            push_selections=self.options.push_selections_into_chunks,
            prune_chunks=self.options.prune_chunks,
            shared=self.options.shared_scan,
            shards=self.options.shards,
        )
        program = MalProgram(
            [
                EvalPlan("qf", qf_plan),
                CallRuntimeOptimizer(callback, "qf"),
                EvalPlan("result", qs_plan),
                ReturnValue("result"),
            ]
        )
        return CompiledQuery(
            program=program,
            qf_plan=qf_plan,
            qs_plan=qs_plan,
            rewrite=report,
            join_order=ordered.join_order,
            two_stage=bool(colored.black_vertices),
        )

    def compile_single_stage(
        self, plan: algebra.LogicalPlan
    ) -> tuple[algebra.LogicalPlan, list[str]]:
        """Order joins with the same rules but keep one execution stage.

        Used for eagerly loaded databases: the ordered plan scans ``D``
        directly (it is populated), so no run-time rewrite happens.
        """
        plan = standard_optimize(plan)
        rebuild, join_block = _split_upper_chain(plan)
        graph = build_query_graph(join_block)
        if self.options.infer_time_bounds:
            _infer_time_bound_predicates(graph, self.config)
        red_tables = self.database.catalog.metadata_table_names()
        colored = ColoredGraph(graph, red_tables)
        ordered = order_joins(
            colored, self.database.table_num_rows, self.options.rules
        )
        return rebuild(ordered.plan), ordered.join_order

    # -- execution ----------------------------------------------------------------

    def plan_stage_two(self, plan: algebra.LogicalPlan) -> CompiledQuery:
        """Run stage one and the runtime rewrite, but fetch no chunks.

        The ``repro explain`` path: after this returns, the compiled
        query's :class:`~repro.core.runtime_rewrite.RewriteReport` carries
        the chunk plans the scheduler *would* execute — chunks pruned,
        predicted serving tier and cost-ordered fetch schedule — without
        paying for stage two.
        """
        compiled = self.compile(plan)
        ctx = ExecutionContext(self.database)
        program = compiled.program
        program.pc = 0
        program.result_var = None
        for instruction in list(program.instructions):
            program.pc += 1
            instruction.execute(ctx, program)
            if isinstance(instruction, CallRuntimeOptimizer):
                break
        return compiled

    def execute_two_stage(
        self,
        plan: algebra.LogicalPlan,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """Compile and run a query with lazy loading.

        ``cancel`` is a cooperative :class:`CancelToken` checked at operator
        entry and chunk boundaries; a serving front end sets it to abort a
        timed-out request mid-stage-two.
        """
        compiled = self.compile(plan)
        ctx = ExecutionContext(self.database, cancel=cancel)
        started = time.perf_counter()
        result = compiled.program.run(ctx)
        elapsed = time.perf_counter() - started
        boundary = compiled.rewrite.stage_boundary_perf
        stage_one = (boundary - started) if boundary is not None else elapsed
        return QueryResult(
            table=drop_hidden_columns(result),
            seconds=elapsed,
            stage_one_seconds=stage_one,
            stage_two_seconds=max(elapsed - stage_one, 0.0),
            stats=ctx.stats,
            rewrite=compiled.rewrite,
            join_order=compiled.join_order,
            two_stage=compiled.two_stage,
        )

    def execute_single_stage(
        self,
        plan: algebra.LogicalPlan,
        cancel: CancelToken | None = None,
    ) -> QueryResult:
        """Run a query conventionally (eager databases)."""
        ordered, join_order = self.compile_single_stage(plan)
        ctx = ExecutionContext(self.database, cancel=cancel)
        started = time.perf_counter()
        result = execute_plan(ordered, ctx)
        elapsed = time.perf_counter() - started
        return QueryResult(
            table=drop_hidden_columns(result),
            seconds=elapsed,
            stats=ctx.stats,
            join_order=join_order,
            two_stage=False,
        )


def _replace_subtree(
    plan: algebra.LogicalPlan,
    target: algebra.LogicalPlan,
    replacement: algebra.LogicalPlan,
) -> algebra.LogicalPlan:
    """Rebuild ``plan`` with the (identity-matched) target swapped out."""
    if plan is target:
        return replacement
    if isinstance(plan, algebra.Join):
        return algebra.Join(
            _replace_subtree(plan.left, target, replacement),
            _replace_subtree(plan.right, target, replacement),
            plan.condition,
        )
    if isinstance(plan, algebra.Select):
        return algebra.Select(
            _replace_subtree(plan.child, target, replacement), plan.predicate
        )
    return plan
