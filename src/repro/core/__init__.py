"""The paper's contribution: partial-loading-aware query processing.

Composes the engine substrate into the system of Sections III–V:

* :mod:`schema` — the seismology warehouse schema (F, S, D, H + views);
* :mod:`registrar` — eager given-metadata loading;
* :mod:`coloring` — query-graph coloring and join-order rules R1–R4;
* :mod:`two_stage` — plan decomposition Q = Qf ⋈ Qs and MAL emission;
* :mod:`runtime_rewrite` — rewrite rule (1): scan(a) → chunk unions;
* :mod:`partial_views` — Algorithm 1, incremental DMd derivation;
* :mod:`query_types` — the Table-I taxonomy (T1–T5);
* :mod:`loading` — the five loading approaches of the evaluation;
* :mod:`sommelier` — the :class:`SommelierDB` facade;
* :mod:`session` — per-client sessions and the connection-pool facade for
  concurrent serving;
* :mod:`sampling` — approximate answering over chunk samples (§VIII).
"""

from .coloring import ColoredGraph, EdgeColor, RuleSet, order_joins
from .loading import APPROACHES, LoadReport, prepare, prepare_lazy
from .partial_views import DerivationReport, PartialViewManager
from .query_types import QueryType, classify_plan
from .registrar import Registrar, RegistrarReport, XseedChunkLoader
from .runtime_rewrite import RewriteReport
from .schema import SommelierConfig, create_seismology_schema
from .session import SessionPool, SommelierSession
from .sommelier import SommelierDB
from .two_stage import (
    CompiledQuery,
    QueryResult,
    TwoStageCompiler,
    TwoStageOptions,
)

__all__ = [
    "APPROACHES",
    "ColoredGraph",
    "CompiledQuery",
    "DerivationReport",
    "EdgeColor",
    "LoadReport",
    "PartialViewManager",
    "QueryResult",
    "QueryType",
    "Registrar",
    "RegistrarReport",
    "RewriteReport",
    "RuleSet",
    "SessionPool",
    "SommelierConfig",
    "SommelierDB",
    "SommelierSession",
    "TwoStageCompiler",
    "TwoStageOptions",
    "XseedChunkLoader",
    "classify_plan",
    "create_seismology_schema",
    "order_joins",
    "prepare",
    "prepare_lazy",
]
