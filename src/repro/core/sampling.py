"""Approximate query answering over chunk samples (paper Section VIII).

Lazy loading shifts cost from preparation to query time; when a query
selects many chunks "this can lead to unacceptable waiting times ... our
approach can be combined with techniques of approximative query answering
such as sampling" (Future Work).

:class:`ChunkSampler` implements that combination: stage one runs in full
(metadata is cheap and exact), then instead of loading *all* required
chunks, a uniform random subset is loaded and scalar aggregates are
estimated from per-chunk partials:

* ``COUNT``/``SUM`` — Horvitz-Thompson scaled by ``N / n`` (chunks are the
  sampling units); a between-chunk standard error accompanies the estimate;
* ``AVG`` — ratio estimator ``ΣSUM_i / ΣCOUNT_i`` over sampled chunks;
* ``STD`` — from partial sum / sum-of-squares / count;
* ``MIN``/``MAX`` — the sample extremum, flagged as a bound (one-sided
  estimate), not an unbiased value.

Only scalar (non-grouped) aggregate queries are supported — the Query-1
shape the paper's motivation describes.  Each aggregate is decomposed into
partials (SUM/COUNT/SSQ) evaluated per chunk, i.e. classic two-phase
aggregation over the chunk-access access path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..engine import algebra
from ..engine.database import Database
from ..engine.errors import PlanError
from ..engine.mal import EvalPlan
from ..engine.physical import ExecutionContext, execute_plan
from ..engine.sql import bind_sql
from .runtime_rewrite import RewriteReport, rewrite_actual_scans
from .schema import SommelierConfig
from .two_stage import TwoStageCompiler

__all__ = ["AggregateEstimate", "ApproximateResult", "ChunkSampler"]


@dataclass(frozen=True)
class AggregateEstimate:
    """One estimated aggregate output."""

    name: str
    function: str
    estimate: float
    standard_error: float | None  # None when no error model applies
    is_bound: bool = False  # True for MIN/MAX (one-sided)


@dataclass
class ApproximateResult:
    """Outcome of an approximate query."""

    estimates: list[AggregateEstimate]
    chunks_total: int
    chunks_sampled: int
    sampling_fraction: float
    exact: bool  # True when every required chunk was loaded anyway

    def estimate_by_name(self, name: str) -> AggregateEstimate:
        for estimate in self.estimates:
            if estimate.name == name:
                return estimate
        raise KeyError(name)


@dataclass
class _Partials:
    """Per-chunk partial aggregates for one argument expression."""

    count: float = 0.0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    per_chunk_sums: list[float] = field(default_factory=list)
    per_chunk_counts: list[float] = field(default_factory=list)


class ChunkSampler:
    """Approximate scalar aggregates by sampling required chunks."""

    def __init__(
        self,
        database: Database,
        config: SommelierConfig,
        compiler: TwoStageCompiler,
        fraction: float = 0.2,
        min_chunks: int = 2,
        seed: int = 20150413,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("sampling fraction must be in (0, 1]")
        self.database = database
        self.config = config
        self.compiler = compiler
        self.fraction = fraction
        self.min_chunks = max(min_chunks, 1)
        self._rng = np.random.default_rng(seed)

    # -- public API ------------------------------------------------------------

    def approximate_query(self, sql: str) -> ApproximateResult:
        """Estimate a scalar aggregate query from a sample of its chunks."""
        plan = bind_sql(sql, self.database)
        aggregate, projection = _find_scalar_aggregate(plan)
        compiled = self.compiler.compile(plan)
        ctx = ExecutionContext(self.database)

        # Stage one runs exactly (metadata is cheap).
        first = compiled.program.instructions[0]
        assert isinstance(first, EvalPlan)
        first.execute(ctx, compiled.program)
        stage_one = ctx.stage_results[first.var]
        if stage_one.schema.has(self.config.uri_column):
            uris = sorted(set(stage_one.column(self.config.uri_column).to_list()))
        else:
            uris = sorted(getattr(self.database.chunk_loader, "_file_ids", {}))

        sample = self._choose(uris)
        partials = {
            spec.output_name: _Partials() for spec in aggregate.aggregates
        }
        for uri in sample:
            self._accumulate(compiled.qs_plan, aggregate, ctx, uri, partials)

        scale = len(uris) / len(sample) if sample else 1.0
        estimates = [
            _estimate(spec, partials[spec.output_name], scale)
            for spec in aggregate.aggregates
        ]
        named = _apply_projection_names(estimates, projection)
        return ApproximateResult(
            estimates=named,
            chunks_total=len(uris),
            chunks_sampled=len(sample),
            sampling_fraction=self.fraction,
            exact=len(sample) == len(uris),
        )

    # -- internals -----------------------------------------------------------------

    def _choose(self, uris: list[str]) -> list[str]:
        if not uris:
            return []
        target = max(self.min_chunks, math.ceil(len(uris) * self.fraction))
        target = min(target, len(uris))
        chosen = self._rng.choice(len(uris), size=target, replace=False)
        return [uris[i] for i in sorted(chosen)]

    def _accumulate(
        self,
        qs_plan: algebra.LogicalPlan,
        aggregate: algebra.Aggregate,
        ctx: ExecutionContext,
        uri: str,
        partials: dict[str, _Partials],
    ) -> None:
        """Evaluate the pre-aggregation plan for one chunk, fold partials."""
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            aggregate.child, self.database, self.config, [uri], report
        )
        rows = execute_plan(rewritten, ctx)
        for spec in aggregate.aggregates:
            slot = partials[spec.output_name]
            if spec.argument is None:
                values = np.ones(rows.num_rows)
            else:
                values = np.asarray(
                    spec.argument.evaluate(rows), dtype=np.float64
                )
            count = float(len(values))
            total = float(values.sum()) if len(values) else 0.0
            slot.count += count
            slot.total += total
            slot.total_sq += float((values * values).sum()) if len(values) else 0.0
            if len(values):
                slot.minimum = min(slot.minimum, float(values.min()))
                slot.maximum = max(slot.maximum, float(values.max()))
            slot.per_chunk_sums.append(total)
            slot.per_chunk_counts.append(count)


def _find_scalar_aggregate(
    plan: algebra.LogicalPlan,
) -> tuple[algebra.Aggregate, algebra.Project | None]:
    """Locate the scalar Aggregate node (and the Project above it)."""
    projection: algebra.Project | None = None
    node = plan
    while True:
        if isinstance(node, algebra.Aggregate):
            if node.group_by:
                raise PlanError(
                    "approximate answering supports scalar aggregates only "
                    "(no GROUP BY)"
                )
            return node, projection
        if isinstance(node, algebra.Project):
            projection = node
            node = node.child
            continue
        if isinstance(node, (algebra.Sort, algebra.Limit, algebra.Distinct)):
            node = node.children()[0]
            continue
        raise PlanError(
            "approximate answering requires an aggregate query "
            f"(found {type(node).__name__})"
        )


def _estimate(
    spec: algebra.AggregateSpec, partials: _Partials, scale: float
) -> AggregateEstimate:
    sums = np.asarray(partials.per_chunk_sums, dtype=np.float64)
    n = max(len(sums), 1)
    if spec.function == "COUNT":
        counts = np.asarray(partials.per_chunk_counts, dtype=np.float64)
        estimate = partials.count * scale
        stderr = float(counts.std(ddof=1)) * scale * math.sqrt(n) if n > 1 else None
        return AggregateEstimate(spec.output_name, "COUNT", estimate, stderr)
    if spec.function == "SUM":
        estimate = partials.total * scale
        stderr = float(sums.std(ddof=1)) * scale * math.sqrt(n) if n > 1 else None
        return AggregateEstimate(spec.output_name, "SUM", estimate, stderr)
    if spec.function == "AVG":
        estimate = partials.total / partials.count if partials.count else math.nan
        if n > 1 and partials.count:
            chunk_means = [
                s / c if c else 0.0
                for s, c in zip(partials.per_chunk_sums,
                                partials.per_chunk_counts)
            ]
            stderr = float(np.std(chunk_means, ddof=1)) / math.sqrt(n)
        else:
            stderr = None
        return AggregateEstimate(spec.output_name, "AVG", estimate, stderr)
    if spec.function == "STD":
        if partials.count:
            mean = partials.total / partials.count
            variance = max(partials.total_sq / partials.count - mean * mean, 0.0)
            estimate = math.sqrt(variance)
        else:
            estimate = math.nan
        return AggregateEstimate(spec.output_name, "STD", estimate, None)
    if spec.function in ("MIN", "MAX"):
        value = partials.minimum if spec.function == "MIN" else partials.maximum
        if not math.isfinite(value):
            value = math.nan
        return AggregateEstimate(
            spec.output_name, spec.function, value, None, is_bound=True
        )
    raise PlanError(f"unsupported aggregate {spec.function}")  # pragma: no cover


def _apply_projection_names(
    estimates: list[AggregateEstimate], projection: algebra.Project | None
) -> list[AggregateEstimate]:
    """Map internal aggregate slots back to the SELECT output names.

    Only direct references (``SELECT AVG(x) AS name``) are renamed;
    composite expressions keep the internal name.
    """
    if projection is None:
        return estimates
    from ..engine.expressions import ColumnRef

    renames: dict[str, str] = {}
    for name, expression in projection.outputs:
        if isinstance(expression, ColumnRef):
            renames[expression.name] = name
    return [
        AggregateEstimate(
            renames.get(e.name, e.name),
            e.function,
            e.estimate,
            e.standard_error,
            e.is_bound,
        )
        for e in estimates
    ]
