"""Run-time query optimization: rewrite rule (1) of the paper.

Between the two execution stages, every access to an actual-data table is
rewritten using the stage-one result::

    scan(a)  →  ∪_{f ∈ result-scan(Qf)}  cache-scan(f)    if f ∈ C
                                          chunk-access(f)  otherwise

where ``C`` is the set of chunks currently cached by the Recycler.  When a
selection sits directly on the scan, it is pushed into the per-chunk
accesses (the paper's second rewrite rule) — for cache-scans as a selection
above, for chunk-accesses as a pushed predicate evaluated right after
ingestion (the chunk itself is cached unfiltered so later queries with
different predicates still benefit).

The rewrite happens inside the MAL program: the Run-time Optimizer locates
the pending ``EvalPlan`` instructions and replaces the relevant plan
subtrees.  With ``io_threads > 1`` the scan is rewritten into a
:class:`~repro.engine.algebra.ParallelChunkScan` — a morsel-style pipeline
over the database's shared I/O pool in which chunk decodes overlap stage-two
evaluation (the concurrent evolution of Section V-3's per-file
parallelization; the serial per-chunk union remains the ``io_threads == 1``
path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import algebra
from ..engine.database import Database
from ..engine.errors import ExecutionError
from ..engine.mal import EvalPlan, MalProgram
from ..engine.physical import ExecutionContext
from .schema import SommelierConfig

__all__ = ["RewriteReport", "make_runtime_optimizer", "rewrite_actual_scans"]


@dataclass
class RewriteReport:
    """What the run-time optimizer decided (inspectable by tests/benches)."""

    required_uris: list[str] = field(default_factory=list)
    cached_uris: list[str] = field(default_factory=list)
    loaded_uris: list[str] = field(default_factory=list)
    rewrote_scans: int = 0
    used_all_chunks_fallback: bool = False
    # perf_counter() timestamp at which stage one handed over control —
    # the stage boundary used for the paper's stage-time breakdowns.
    stage_boundary_perf: float | None = None


def _tail_scans_actual_tables(
    program: MalProgram, next_pc: int, config: SommelierConfig
) -> bool:
    """Does any pending EvalPlan scan an actual-data table?"""
    actual = set(config.actual_tables)

    def plan_has_actual_scan(node: algebra.LogicalPlan) -> bool:
        if isinstance(node, algebra.Scan) and node.table_name in actual:
            return True
        return any(plan_has_actual_scan(c) for c in node.children())

    return any(
        isinstance(instruction, EvalPlan)
        and plan_has_actual_scan(instruction.plan)
        for instruction in program.instructions[next_pc:]
    )


def _required_uris(
    ctx: ExecutionContext,
    input_var: str,
    config: SommelierConfig,
    report: RewriteReport,
) -> list[str]:
    """Distinct chunk URIs named by the stage-one result.

    Falls back to *every* registered chunk when the metadata branch did not
    expose the URI column — the paper's only-AD case where "there is no
    alternative to paying the price for loading all AD anyway".
    """
    stage_one = ctx.stage_results[input_var]
    if stage_one.schema.has(config.uri_column):
        uris = sorted(set(stage_one.column(config.uri_column).to_list()))
    else:
        loader = ctx.database.chunk_loader
        known = getattr(loader, "_file_ids", None)
        if known is None:
            raise ExecutionError(
                "stage one lacks the chunk URI column and the chunk loader "
                "cannot enumerate chunks"
            )
        uris = sorted(known)
        report.used_all_chunks_fallback = True
    report.required_uris = list(uris)
    return uris


def rewrite_actual_scans(
    plan: algebra.LogicalPlan,
    database: Database,
    config: SommelierConfig,
    uris: list[str],
    report: RewriteReport,
    push_selections: bool = True,
    io_threads: int = 1,
    executor: str = "thread",
) -> algebra.LogicalPlan:
    """Replace scans of actual-data tables by per-chunk access paths.

    With ``io_threads == 1`` every required chunk becomes one branch of a
    ``Union`` — a cache-scan if the Recycler holds it, a chunk-access
    otherwise — evaluated serially.  With ``io_threads > 1`` the whole
    chunk list becomes one :class:`~repro.engine.algebra.ParallelChunkScan`
    that streams decodes through the shared I/O pool (cached chunks are
    still served from the Recycler inside that pipeline, so semantics never
    depend on cache state).
    """
    actual = set(config.actual_tables)
    cached = database.recycler.cached_uris()

    def make_access(uri: str, scan: algebra.Scan,
                    predicate) -> algebra.LogicalPlan:
        if uri in cached:
            access: algebra.LogicalPlan = algebra.CacheScan(
                uri, scan.table_name, scan.schema
            )
            if predicate is not None:
                access = algebra.Select(access, predicate)
            return access
        return algebra.ChunkAccess(
            uri, scan.table_name, scan.schema, pushed_predicate=predicate
        )

    def make_chunk_set(
        scan: algebra.Scan, predicate
    ) -> algebra.LogicalPlan:
        if io_threads > 1 and len(uris) > 1:
            return algebra.ParallelChunkScan(
                uris,
                scan.table_name,
                scan.schema,
                pushed_predicate=predicate,
                io_threads=io_threads,
                executor=executor,
            )
        return algebra.Union(
            [make_access(uri, scan, predicate) for uri in uris]
        )

    def transform(node: algebra.LogicalPlan) -> algebra.LogicalPlan:
        if (
            isinstance(node, algebra.Select)
            and isinstance(node.child, algebra.Scan)
            and node.child.table_name in actual
        ):
            report.rewrote_scans += 1
            if not uris:
                return node  # base table is empty in lazy mode: 0 rows
            predicate = node.predicate if push_selections else None
            chunk_set = make_chunk_set(node.child, predicate)
            if not push_selections:
                return algebra.Select(chunk_set, node.predicate)
            return chunk_set
        if isinstance(node, algebra.Scan) and node.table_name in actual:
            report.rewrote_scans += 1
            if not uris:
                return node
            return make_chunk_set(node, None)
        return _rebuild(node, transform)

    return transform(plan)


def _rebuild(node: algebra.LogicalPlan, transform) -> algebra.LogicalPlan:
    if isinstance(node, algebra.Select):
        return algebra.Select(transform(node.child), node.predicate)
    if isinstance(node, algebra.Project):
        return algebra.Project(transform(node.child), node.outputs)
    if isinstance(node, algebra.Join):
        return algebra.Join(
            transform(node.left), transform(node.right), node.condition
        )
    if isinstance(node, algebra.Aggregate):
        return algebra.Aggregate(
            transform(node.child), node.group_by, node.aggregates
        )
    if isinstance(node, algebra.Union):
        return algebra.Union([transform(c) for c in node.children()])
    if isinstance(node, algebra.Sort):
        return algebra.Sort(transform(node.child), node.keys)
    if isinstance(node, algebra.Limit):
        return algebra.Limit(transform(node.child), node.count)
    if isinstance(node, algebra.Distinct):
        return algebra.Distinct(transform(node.child))
    return node


def make_runtime_optimizer(
    database: Database,
    config: SommelierConfig,
    report: RewriteReport,
    io_threads: int = 1,
    executor: str = "thread",
    push_selections: bool = True,
):
    """Build the callback installed into ``CallRuntimeOptimizer``."""

    def runtime_optimize(
        ctx: ExecutionContext, program: MalProgram, next_pc: int
    ) -> None:
        import time

        report.stage_boundary_perf = time.perf_counter()
        # A metadata-only query (T1/T2/T3) has no actual-data scans left in
        # the program tail: nothing to rewrite, nothing to load.
        if not _tail_scans_actual_tables(program, next_pc, config):
            return
        call = program.instructions[next_pc - 1]
        input_var = getattr(call, "input_var", "qf")
        uris = _required_uris(ctx, input_var, config, report)
        cached = database.recycler.cached_uris()
        report.cached_uris = sorted(set(uris) & cached)
        report.loaded_uris = [uri for uri in uris if uri not in cached]

        # The parallel pipeline decodes whole chunks, which defeats the
        # in-situ accessor (it decodes sub-chunk ranges inside the
        # ChunkAccess operator) — fall back to the serial per-chunk union.
        effective_threads = (
            1 if database.chunk_access_strategy == "in_situ" else io_threads
        )
        new_tail: list = []
        for instruction in program.instructions[next_pc:]:
            if isinstance(instruction, EvalPlan):
                rewritten = rewrite_actual_scans(
                    instruction.plan,
                    database,
                    config,
                    uris,
                    report,
                    push_selections=push_selections,
                    io_threads=effective_threads,
                    executor=executor,
                )
                new_tail.append(EvalPlan(instruction.var, rewritten))
            else:
                new_tail.append(instruction)
        program.replace_from(next_pc, new_tail)

    return runtime_optimize
