"""Run-time query optimization: rewrite rule (1) of the paper.

Between the two execution stages, every access to an actual-data table is
rewritten using the stage-one result::

    scan(a)  →  schedule( planner(f ∈ result-scan(Qf)) )

The chunk planner (:mod:`repro.engine.chunk_planner`) first *prunes* the
stage-one chunk set against per-chunk min/max statistics — a chunk whose
ranges cannot satisfy the scan's literal bound conjuncts contributes no
rows, so skipping its fetch is free correctness-preserving work — then
classifies every surviving chunk by the tier it will be served from
(recycler-resident < spilled mmap < remote fetch+decode) and emits a
cost-ordered fetch schedule.  The resulting
:class:`~repro.engine.chunk_planner.ChunkPlan` rides inside one
:class:`~repro.engine.algebra.ParallelChunkScan`, whose serial
(``io_threads == 1``), thread and process executors all honor the same
schedule — fetch order is identical across them, and assembly order keeps
results bit-identical to unscheduled execution.

When a selection sits directly on the scan, it is pushed into the chunk
pipeline (the paper's second rewrite rule) and doubles as the pruning
predicate; the chunk itself is cached unfiltered so later queries with
different predicates still benefit.

The classic per-chunk union — cache-scan for chunks in ``C``, chunk-access
otherwise — remains the rewrite shape for the *in-situ* chunk access
strategy, whose sub-chunk selective decode lives inside the ``ChunkAccess``
operator.

The rewrite happens inside the MAL program: the Run-time Optimizer locates
the pending ``EvalPlan`` instructions and replaces the relevant plan
subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..engine import algebra
from ..engine.database import Database
from ..engine.errors import ExecutionError
from ..engine.mal import EvalPlan, MalProgram
from ..engine.physical import ExecutionContext
from .schema import SommelierConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.chunk_planner import ChunkPlan

__all__ = ["RewriteReport", "make_runtime_optimizer", "rewrite_actual_scans"]


@dataclass
class RewriteReport:
    """What the run-time optimizer decided (inspectable by tests/benches)."""

    required_uris: list[str] = field(default_factory=list)
    cached_uris: list[str] = field(default_factory=list)
    loaded_uris: list[str] = field(default_factory=list)
    pruned_uris: list[str] = field(default_factory=list)
    chunk_plans: "list[ChunkPlan]" = field(default_factory=list)
    rewrote_scans: int = 0
    used_all_chunks_fallback: bool = False
    # perf_counter() timestamp at which stage one handed over control —
    # the stage boundary used for the paper's stage-time breakdowns.
    stage_boundary_perf: float | None = None


def _tail_scans_actual_tables(
    program: MalProgram, next_pc: int, config: SommelierConfig
) -> bool:
    """Does any pending EvalPlan scan an actual-data table?"""
    actual = set(config.actual_tables)

    def plan_has_actual_scan(node: algebra.LogicalPlan) -> bool:
        if isinstance(node, algebra.Scan) and node.table_name in actual:
            return True
        return any(plan_has_actual_scan(c) for c in node.children())

    return any(
        isinstance(instruction, EvalPlan)
        and plan_has_actual_scan(instruction.plan)
        for instruction in program.instructions[next_pc:]
    )


def _required_uris(
    ctx: ExecutionContext,
    input_var: str,
    config: SommelierConfig,
    report: RewriteReport,
) -> list[str]:
    """Distinct chunk URIs named by the stage-one result.

    Falls back to *every* registered chunk when the metadata branch did not
    expose the URI column — the paper's only-AD case where "there is no
    alternative to paying the price for loading all AD anyway".
    """
    stage_one = ctx.stage_results[input_var]
    if stage_one.schema.has(config.uri_column):
        uris = sorted(set(stage_one.column(config.uri_column).to_list()))
    else:
        loader = ctx.database.chunk_loader
        known = getattr(loader, "_file_ids", None)
        if known is None:
            raise ExecutionError(
                "stage one lacks the chunk URI column and the chunk loader "
                "cannot enumerate chunks"
            )
        uris = sorted(known)
        report.used_all_chunks_fallback = True
    report.required_uris = list(uris)
    return uris


def rewrite_actual_scans(
    plan: algebra.LogicalPlan,
    database: Database,
    config: SommelierConfig,
    uris: list[str],
    report: RewriteReport,
    push_selections: bool = True,
    io_threads: int = 1,
    executor: str = "thread",
    prune_chunks: bool = True,
    shared: bool = False,
    shards: int = 0,
) -> algebra.LogicalPlan:
    """Replace scans of actual-data tables by planned chunk access paths.

    Every rewritten scan goes through the database's chunk planner: the
    candidate URIs are pruned against per-chunk statistics (when
    ``prune_chunks`` and a predicate allow it), classified by serving tier
    and cost-ordered.  The surviving chunks become one
    :class:`~repro.engine.algebra.ParallelChunkScan` driven by that plan on
    every executor; the in-situ access strategy instead keeps the classic
    serial union of cache-scans / chunk-accesses (its selective decode
    lives inside ``ChunkAccess``), built from the same pruned plan.
    """
    actual = set(config.actual_tables)
    cached = database.recycler.cached_uris()
    in_situ = database.chunk_access_strategy == "in_situ"

    def make_access(uri: str, scan: algebra.Scan,
                    predicate) -> algebra.LogicalPlan:
        if uri in cached:
            access: algebra.LogicalPlan = algebra.CacheScan(
                uri, scan.table_name, scan.schema
            )
            if predicate is not None:
                access = algebra.Select(access, predicate)
            return access
        return algebra.ChunkAccess(
            uri, scan.table_name, scan.schema, pushed_predicate=predicate
        )

    def make_chunk_set(
        scan: algebra.Scan, predicate, planning_predicate
    ) -> algebra.LogicalPlan:
        chunk_plan = database.chunk_planner.plan(
            uris, scan.table_name, planning_predicate, prune=prune_chunks
        )
        report.chunk_plans.append(chunk_plan)
        report.pruned_uris.extend(p.uri for p in chunk_plan.pruned)
        if in_situ:
            # Sub-chunk selective decode needs the per-chunk access
            # operator; scheduling is moot (decodes are partial), but the
            # planner's pruning still applies.
            if not chunk_plan.chunks:
                return algebra.EmptyRelation(scan.schema)
            return algebra.Union(
                [
                    make_access(chunk.uri, scan, predicate)
                    for chunk in chunk_plan.chunks
                ]
            )
        return algebra.ParallelChunkScan(
            chunk_plan,
            scan.table_name,
            scan.schema,
            pushed_predicate=predicate,
            io_threads=io_threads,
            executor=executor,
            shared=shared,
            shards=shards,
        )

    def transform(node: algebra.LogicalPlan) -> algebra.LogicalPlan:
        if (
            isinstance(node, algebra.Select)
            and isinstance(node.child, algebra.Scan)
            and node.child.table_name in actual
        ):
            report.rewrote_scans += 1
            if not uris:
                return node  # base table is empty in lazy mode: 0 rows
            predicate = node.predicate if push_selections else None
            # The planner always sees the full selection: pruning is safe
            # whenever the predicate is applied to the surviving rows,
            # whether pushed into the chunk set or kept above it.
            chunk_set = make_chunk_set(node.child, predicate, node.predicate)
            if not push_selections:
                return algebra.Select(chunk_set, node.predicate)
            return chunk_set
        if isinstance(node, algebra.Scan) and node.table_name in actual:
            report.rewrote_scans += 1
            if not uris:
                return node
            return make_chunk_set(node, None, None)
        return _rebuild(node, transform)

    return transform(plan)


def _rebuild(node: algebra.LogicalPlan, transform) -> algebra.LogicalPlan:
    if isinstance(node, algebra.Select):
        return algebra.Select(transform(node.child), node.predicate)
    if isinstance(node, algebra.Project):
        return algebra.Project(transform(node.child), node.outputs)
    if isinstance(node, algebra.Join):
        return algebra.Join(
            transform(node.left), transform(node.right), node.condition
        )
    if isinstance(node, algebra.Aggregate):
        return algebra.Aggregate(
            transform(node.child), node.group_by, node.aggregates
        )
    if isinstance(node, algebra.Union):
        return algebra.Union([transform(c) for c in node.children()])
    if isinstance(node, algebra.Sort):
        return algebra.Sort(transform(node.child), node.keys)
    if isinstance(node, algebra.Limit):
        return algebra.Limit(transform(node.child), node.count)
    if isinstance(node, algebra.Distinct):
        return algebra.Distinct(transform(node.child))
    return node


def make_runtime_optimizer(
    database: Database,
    config: SommelierConfig,
    report: RewriteReport,
    io_threads: int = 1,
    executor: str = "thread",
    push_selections: bool = True,
    prune_chunks: bool = True,
    shared: bool = False,
    shards: int = 0,
):
    """Build the callback installed into ``CallRuntimeOptimizer``."""

    def runtime_optimize(
        ctx: ExecutionContext, program: MalProgram, next_pc: int
    ) -> None:
        import time

        report.stage_boundary_perf = time.perf_counter()
        # A metadata-only query (T1/T2/T3) has no actual-data scans left in
        # the program tail: nothing to rewrite, nothing to load.
        if not _tail_scans_actual_tables(program, next_pc, config):
            return
        call = program.instructions[next_pc - 1]
        input_var = getattr(call, "input_var", "qf")
        uris = _required_uris(ctx, input_var, config, report)

        new_tail: list = []
        for instruction in program.instructions[next_pc:]:
            if isinstance(instruction, EvalPlan):
                rewritten = rewrite_actual_scans(
                    instruction.plan,
                    database,
                    config,
                    uris,
                    report,
                    push_selections=push_selections,
                    io_threads=io_threads,
                    executor=executor,
                    prune_chunks=prune_chunks,
                    shared=shared,
                    shards=shards,
                )
                new_tail.append(EvalPlan(instruction.var, rewritten))
            else:
                new_tail.append(instruction)
        program.replace_from(next_pc, new_tail)

        # Post-planning accounting: what survives, where it comes from,
        # what statistics proved irrelevant.
        pruned = set(report.pruned_uris)
        ctx.stats.chunks_pruned += len(report.pruned_uris)
        cached = database.recycler.cached_uris()
        survivors = [uri for uri in uris if uri not in pruned]
        report.cached_uris = sorted(set(survivors) & cached)
        report.loaded_uris = [uri for uri in survivors if uri not in cached]

    return runtime_optimize
