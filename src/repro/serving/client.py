"""A small blocking HTTP client for the serving front end.

Used by the load benchmark and the tests; ``http.client`` handles the
chunked transfer decoding, so callers just see the decoded JSON payload.
Not a public SDK — any HTTP client works against the wire protocol.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any

__all__ = ["QueryResponse", "ServingClient"]


@dataclass
class QueryResponse:
    """One decoded server response."""

    status: int
    payload: Any
    retry_after: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def backpressure(self) -> bool:
        """Shed by admission control or rate limiting (retryable)."""
        return self.status in (429, 503)

    @property
    def rows(self) -> list[list]:
        return self.payload["rows"] if self.ok else []

    @property
    def columns(self) -> list[str]:
        return self.payload["columns"] if self.ok else []


class ServingClient:
    """One keep-alive connection to a :class:`SommelierServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        timeout: float = 60.0,
    ) -> None:
        self.client_id = client_id
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        return headers

    def _round_trip(
        self, method: str, path: str, body: str | None = None
    ) -> QueryResponse:
        self._connection.request(
            method, path, body=body, headers=self._headers()
        )
        response = self._connection.getresponse()
        raw = response.read()
        retry_after_text = response.getheader("Retry-After")
        try:
            payload = json.loads(raw) if raw else None
        except ValueError:
            payload = {"error": f"undecodable body: {raw[:128]!r}"}
        return QueryResponse(
            status=response.status,
            payload=payload,
            retry_after=(
                float(retry_after_text) if retry_after_text else None
            ),
        )

    def query(self, sql: str) -> QueryResponse:
        return self._round_trip("POST", "/query", json.dumps({"sql": sql}))

    def stats(self) -> dict:
        return self._round_trip("GET", "/stats").payload

    def health(self) -> dict:
        return self._round_trip("GET", "/health").payload

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
