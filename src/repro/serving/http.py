"""Minimal HTTP/1.1 over asyncio streams (stdlib only, CI-hermetic).

Just enough protocol for the serving front end: request-line + header
parsing with hard size limits, ``Content-Length`` bodies, JSON responses,
and chunked transfer encoding so large result tables stream without being
materialized as one bytes blob.  Keep-alive is supported (HTTP/1.1
default); the server closes the connection on protocol errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "ChunkedWriter",
    "read_request",
    "send_json",
    "send_response",
]

MAX_HEADER_COUNT = 64
MAX_HEADER_LINE = 8192

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or over-limit request; maps to a 4xx response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request (headers lower-cased, query string decoded)."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(
                400, f"request body is not valid JSON: {exc}"
            ) from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader, max_body_bytes: int) -> HttpRequest | None:
    """Parse one request off the stream; None when the client closed."""
    try:
        line = await reader.readline()
    except ValueError:  # StreamReader limit overrun
        raise HttpError(400, "request line too long") from None
    if not line:
        return None
    try:
        method, target, version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    while True:
        if len(headers) > MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        try:
            raw = await reader.readline()
        except ValueError:
            raise HttpError(400, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > MAX_HEADER_LINE:
            raise HttpError(400, "header line too long")
        name, separator, value = raw.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, f"request body over {max_body_bytes} bytes")
        if length:
            body = await reader.readexactly(length)

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def _head(
    status: int,
    headers: Mapping[str, str],
) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Mapping[str, str] | None = None,
) -> None:
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
    }
    if extra_headers:
        headers.update(extra_headers)
    writer.write(_head(status, headers) + body)
    await writer.drain()


async def send_json(
    writer,
    status: int,
    payload: Any,
    extra_headers: Mapping[str, str] | None = None,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    await send_response(writer, status, body, extra_headers=extra_headers)


class ChunkedWriter:
    """``Transfer-Encoding: chunked`` response writer.

    ``start`` emits the head, each ``write`` one chunk (draining, so a slow
    client exerts backpressure on the producer instead of buffering the
    whole table), and ``finish`` the zero-length terminator that keeps the
    connection reusable.
    """

    def __init__(self, writer) -> None:
        self._writer = writer

    async def start(
        self,
        status: int = 200,
        content_type: str = "application/json",
        extra_headers: Mapping[str, str] | None = None,
    ) -> None:
        headers = {
            "Content-Type": content_type,
            "Transfer-Encoding": "chunked",
        }
        if extra_headers:
            headers.update(extra_headers)
        self._writer.write(_head(status, headers))
        await self._writer.drain()

    async def write(self, data: bytes) -> None:
        if not data:
            return
        self._writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
