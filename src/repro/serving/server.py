"""The asyncio HTTP/JSON query service over a :class:`SessionPool`.

The event loop owns admission, rate limiting, timeouts and response
streaming; the blocking ``session.query()`` calls run on a thread pool
sized to the session pool, so at most ``pool_size`` queries execute at
once and everything else is either waiting (bounded) or shed (503/429
with ``Retry-After``).

Endpoints::

    POST /query    {"sql": "SELECT ..."}     (also GET /query?sql=...)
    GET  /stats    server + admission + pool + engine counters
    GET  /health   {"status": "ok" | "draining"}

``/query`` streams its answer with chunked transfer encoding::

    {"columns": [...], "rows": [[...], ...], "row_count": N,
     "stats": {"seconds": ..., "chunks_loaded": ..., ...}}

Rows are encoded straight from the result table in batches, draining the
socket between batches — a gigabyte result never materializes as one
Python string, and a slow reader backpressures the encoder.

A request timeout sets the query's
:class:`~repro.engine.physical.CancelToken`; the engine unwinds at the
next chunk boundary and the session returns to the pool before the 504
goes out — a timed-out client can retry immediately without leaking a
pool slot.  Graceful shutdown (:meth:`SommelierServer.stop`) stops
accepting, lets in-flight queries finish streaming, then closes idle
connections and the pool.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..core.session import SessionPool, SommelierSession
from ..core.sommelier import SommelierDB
from ..core.two_stage import QueryResult
from ..engine.errors import EngineError, QueryCancelled, SQLError
from ..engine.physical import CancelToken
from .admission import AdmissionController, AdmissionRejected, ClientRateLimiter
from .http import ChunkedWriter, HttpError, HttpRequest, read_request, send_json

__all__ = ["ServerConfig", "ServerStats", "SommelierServer", "ServerHandle",
           "start_in_thread"]


@dataclass(frozen=True)
class ServerConfig:
    """Wire-level and admission knobs of the serving front end."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick (tests/benchmarks)
    pool_size: int = 4
    # How many requests may wait for a session before new ones are shed
    # with 503 + Retry-After.  0 = shed as soon as the pool is busy.
    max_queue: int = 8
    # Per-client token bucket (keyed by X-Client-Id, else the peer host).
    # <= 0 disables rate limiting.
    rate_limit_qps: float = 0.0
    rate_limit_burst: float = 4.0
    # Per-request budget; on expiry the query's cancel token is set and
    # the client gets 504 once the engine has unwound.
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 30.0
    stream_batch_rows: int = 512
    max_body_bytes: int = 1 << 20


@dataclass
class ServerStats:
    """Front-end request counters (all owned by the event loop)."""

    requests_total: int = 0
    queries_ok: int = 0
    rejected_saturated: int = 0
    rejected_rate_limited: int = 0
    rejected_draining: int = 0
    timeouts: int = 0
    bad_requests: int = 0
    errors: int = 0
    rows_streamed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests_total": self.requests_total,
            "queries_ok": self.queries_ok,
            "rejected_saturated": self.rejected_saturated,
            "rejected_rate_limited": self.rejected_rate_limited,
            "rejected_draining": self.rejected_draining,
            "timeouts": self.timeouts,
            "bad_requests": self.bad_requests,
            "errors": self.errors,
            "rows_streamed": self.rows_streamed,
        }


def _retry_after_header(seconds: float) -> dict[str, str]:
    # Retry-After is delta-seconds (RFC 9110): round up, minimum 1.
    return {"Retry-After": str(max(1, int(seconds + 0.999)))}


class SommelierServer:
    """One asyncio server in front of one shared :class:`SommelierDB`."""

    def __init__(
        self, db: SommelierDB, config: ServerConfig | None = None
    ) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.pool: SessionPool = db.session_pool(self.config.pool_size)
        self.admission = AdmissionController(
            self.config.pool_size, self.config.max_queue
        )
        self.limiter = ClientRateLimiter(
            self.config.rate_limit_qps, self.config.rate_limit_burst
        )
        self.stats = ServerStats()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.pool_size,
            thread_name_prefix="repro-serve",
        )
        self._server: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        # Cached: the socket list empties on close() but callers may still
        # want the address (e.g. to assert new connections are refused).
        self._port = self._server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        assert self._port is not None, "server not started"
        return self._port

    @property
    def draining(self) -> bool:
        return self._draining

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight queries, release everything.

        With ``drain`` (the default) every admitted query finishes
        executing *and streaming its response* before the pool closes; new
        requests arriving meanwhile are shed with 503.  ``drain=False``
        cancels in-flight queries via their tokens instead.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_timeout_s
        )
        if drain:
            while (
                (self.admission.active or self.admission.queued)
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.01)
        # Idle keep-alive connections (and, without drain, stragglers)
        # are cut; handlers notice and exit.
        for writer in list(self._connections):
            writer.close()
        while self._connections and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        self._executor.shutdown(wait=drain, cancel_futures=not drain)
        self.pool.close()

    # -- connection handling -----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpError as exc:
                    self.stats.bad_requests += 1
                    await send_json(
                        writer, exc.status, {"error": str(exc)},
                        extra_headers={"Connection": "close"},
                    )
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive or not request.keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether to keep the connection."""
        self.stats.requests_total += 1
        route = (request.method, request.path)
        if route == ("GET", "/health"):
            await send_json(
                writer, 200,
                {"status": "draining" if self._draining else "ok"},
            )
            return True
        if route == ("GET", "/stats"):
            await send_json(writer, 200, self.stats_snapshot())
            return True
        if request.path == "/query":
            if request.method not in ("GET", "POST"):
                await send_json(
                    writer, 405, {"error": "use GET or POST for /query"}
                )
                return True
            return await self._handle_query(request, writer)
        await send_json(
            writer, 404, {"error": f"no such endpoint {request.path!r}"}
        )
        return True

    # -- /query ------------------------------------------------------------

    def _extract_sql(self, request: HttpRequest) -> str:
        if request.method == "GET":
            sql = request.query.get("sql", "")
        else:
            payload = request.json() if request.body else {}
            if not isinstance(payload, dict):
                raise HttpError(400, "request body must be a JSON object")
            sql = payload.get("sql", "")
        if not isinstance(sql, str) or not sql.strip():
            raise HttpError(400, "missing 'sql'")
        return sql

    def _client_id(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> str:
        explicit = request.headers.get("x-client-id")
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    async def _handle_query(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        if self._draining:
            self.stats.rejected_draining += 1
            await send_json(
                writer, 503, {"error": "server is draining"},
                extra_headers={
                    **_retry_after_header(self.admission.retry_after()),
                    "Connection": "close",
                },
            )
            return False
        try:
            sql = self._extract_sql(request)
        except HttpError as exc:
            self.stats.bad_requests += 1
            await send_json(writer, exc.status, {"error": str(exc)})
            return True
        try:
            self.limiter.check(self._client_id(request, writer))
        except AdmissionRejected as exc:
            self.stats.rejected_rate_limited += 1
            await send_json(
                writer, 429, {"error": exc.reason},
                extra_headers=_retry_after_header(exc.retry_after),
            )
            return True
        try:
            async with self.admission.admit():
                return await self._execute_and_stream(sql, writer)
        except AdmissionRejected as exc:
            self.stats.rejected_saturated += 1
            await send_json(
                writer, 503, {"error": exc.reason},
                extra_headers=_retry_after_header(exc.retry_after),
            )
            return True

    def _run_query(
        self, session: SommelierSession, sql: str, cancel: CancelToken
    ) -> QueryResult:
        try:
            return session.query(sql, cancel=cancel)
        finally:
            # Whatever happened — success, engine error, cancellation —
            # the session goes back before the response is written, so a
            # retrying client finds capacity immediately.
            self.pool.release(session)

    async def _execute_and_stream(
        self, sql: str, writer: asyncio.StreamWriter
    ) -> bool:
        # Admission capacity == pool size, so a slot implies a session.
        session = self.pool.try_acquire()
        if session is None:  # pragma: no cover - defensive
            self.stats.rejected_saturated += 1
            await send_json(
                writer, 503, {"error": "no session available"},
                extra_headers=_retry_after_header(self.admission.retry_after()),
            )
            return True
        cancel = CancelToken()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor, self._run_query, session, sql, cancel
        )
        try:
            result = await asyncio.wait_for(
                asyncio.shield(future), timeout=self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            cancel.cancel()
            # Wait for the engine to unwind and the session to return to
            # the pool; only then is the timeout safe to report.
            try:
                await future
            except EngineError:
                pass
            self.stats.timeouts += 1
            await send_json(
                writer, 504,
                {
                    "error": "query exceeded the "
                    f"{self.config.request_timeout_s:g}s request timeout"
                },
            )
            return True
        except QueryCancelled:
            self.stats.errors += 1
            await send_json(writer, 500, {"error": "query cancelled"})
            return True
        except SQLError as exc:
            self.stats.bad_requests += 1
            await send_json(
                writer, 400,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
            return True
        except EngineError as exc:
            self.stats.errors += 1
            await send_json(
                writer, 500,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
            return True
        await self._stream_result(result, writer)
        self.stats.queries_ok += 1
        self.stats.rows_streamed += result.table.num_rows
        return True

    async def _stream_result(
        self, result: QueryResult, writer: asyncio.StreamWriter
    ) -> None:
        table = result.table
        chunked = ChunkedWriter(writer)
        await chunked.start(200)
        head = json.dumps(list(table.schema.names))
        await chunked.write(b'{"columns": ' + head.encode() + b', "rows": [')
        batch: list[str] = []
        first = True
        for row in table.rows():
            batch.append(json.dumps(list(row)))
            if len(batch) >= self.config.stream_batch_rows:
                prefix = "" if first else ","
                await chunked.write((prefix + ",".join(batch)).encode())
                first = False
                batch.clear()
        if batch:
            prefix = "" if first else ","
            await chunked.write((prefix + ",".join(batch)).encode())
        footer = {
            "row_count": table.num_rows,
            "stats": {
                "seconds": result.seconds,
                "stage_one_seconds": result.stage_one_seconds,
                "stage_two_seconds": result.stage_two_seconds,
                "chunks_loaded": result.stats.chunks_loaded,
                "chunks_from_cache": result.stats.chunks_from_cache,
                "chunks_pruned": result.stats.chunks_pruned,
                "result_cache": result.result_cache,
            },
        }
        await chunked.write(
            b"], " + json.dumps(footer)[1:].encode()
        )
        await chunked.finish()

    # -- monitoring --------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """``/stats``: front-end counters + the engine's counter surfaces.

        ``counters`` is exactly :meth:`SommelierDB.counters_snapshot` —
        the same serialization ``repro cache --json`` prints.
        """
        return {
            "server": {
                **self.stats.as_dict(),
                "draining": int(self._draining),
            },
            "admission": self.admission.stats(),
            "pool": self.pool.stats(),
            "counters": self.db.counters_snapshot(),
        }


# -- running a server off-thread (tests, benchmarks, embedding) -------------


class ServerHandle:
    """A server running on its own event-loop thread."""

    def __init__(
        self,
        server: SommelierServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.server.config.host, self.server.port)

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), self._loop
        )
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    db: SommelierDB, config: ServerConfig | None = None
) -> ServerHandle:
    """Start a :class:`SommelierServer` on a daemon thread; returns once
    the listening socket is bound (``handle.port`` is valid)."""
    loop = asyncio.new_event_loop()
    server = SommelierServer(db, config)
    started = threading.Event()
    boot_error: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # bind failure et al.
            boot_error.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-serving", daemon=True
    )
    thread.start()
    started.wait()
    if boot_error:
        raise boot_error[0]
    return ServerHandle(server, loop, thread)
