"""Admission control for the serving front end.

Two independent gates run before a query touches the engine:

* :class:`ClientRateLimiter` — a token bucket per client id; a client that
  exceeds its refill rate is told to back off (HTTP 429) while everyone
  else proceeds;
* :class:`AdmissionController` — ``capacity`` queries execute at once (the
  session-pool size) and at most ``max_queue`` more may wait.  Beyond that
  the request is refused immediately (HTTP 503) instead of growing an
  unbounded queue — the paper's "heavy traffic" setting makes shedding
  load at the door the only stable answer to saturation.

Both gates raise :class:`AdmissionRejected` carrying a ``retry_after``
estimate, which the server surfaces as the ``Retry-After`` header.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from contextlib import asynccontextmanager
from typing import Callable

__all__ = [
    "AdmissionRejected",
    "TokenBucket",
    "ClientRateLimiter",
    "AdmissionController",
]


class AdmissionRejected(Exception):
    """The request was refused at the door; retry after ``retry_after``s."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self._tokens = self.burst
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_take(self, amount: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available."""
        self._refill()
        deficit = amount - self._tokens
        return max(deficit / self.rate, 0.0)


class ClientRateLimiter:
    """Per-client token buckets, LRU-bounded so ids cannot accumulate.

    ``rate <= 0`` disables limiting entirely (the default serving config:
    admission control alone decides who waits).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client_id: str) -> None:
        """Charge one request to ``client_id``; raise when over rate."""
        if not self.enabled:
            return
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client_id] = bucket
            if len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client_id)
        if not bucket.try_take():
            raise AdmissionRejected(
                f"client {client_id!r} over its {self.rate:g} req/s limit",
                retry_after=bucket.retry_after(),
            )


class AdmissionController:
    """Bounded concurrency + bounded waiting; reject beyond both.

    ``capacity`` mirrors the session-pool size (queries that would block on
    a session wait here, in the event loop, instead); ``max_queue`` bounds
    how many may wait.  A running estimate of service time (EWMA) feeds the
    ``Retry-After`` hint handed to shed requests.
    """

    def __init__(
        self,
        capacity: int,
        max_queue: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError("admission capacity must be positive")
        if max_queue < 0:
            raise ValueError("admission max_queue cannot be negative")
        self.capacity = capacity
        self.max_queue = max_queue
        self.active = 0
        self.queued = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self._clock = clock
        self._semaphore = asyncio.Semaphore(capacity)
        # Optimistic prior so an idle server never tells clients to wait
        # long; converges onto the observed service time within a few
        # requests.
        self._service_ewma_s = 0.1

    def note_service_seconds(self, seconds: float) -> None:
        self._service_ewma_s += 0.2 * (seconds - self._service_ewma_s)

    def retry_after(self) -> float:
        """Estimated seconds until a shed request would find a free slot."""
        backlog = self.active + self.queued + 1
        estimate = self._service_ewma_s * backlog / self.capacity
        return min(max(estimate, 0.05), 30.0)

    @property
    def saturated(self) -> bool:
        return self.queued >= self.max_queue and self._semaphore.locked()

    @asynccontextmanager
    async def admit(self):
        """Hold one execution slot; raises when queue and slots are full."""
        if self.saturated:
            self.rejected_total += 1
            raise AdmissionRejected(
                f"saturated: {self.active} active, {self.queued} queued "
                f"(capacity {self.capacity}, queue bound {self.max_queue})",
                retry_after=self.retry_after(),
            )
        self.queued += 1
        try:
            await self._semaphore.acquire()
        finally:
            self.queued -= 1
        self.active += 1
        self.admitted_total += 1
        started = self._clock()
        try:
            yield
        finally:
            self.active -= 1
            self.note_service_seconds(self._clock() - started)
            self._semaphore.release()

    def stats(self) -> dict[str, float | int]:
        return {
            "capacity": self.capacity,
            "max_queue": self.max_queue,
            "active": self.active,
            "queued": self.queued,
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "service_ewma_ms": round(self._service_ewma_s * 1000.0, 3),
        }
