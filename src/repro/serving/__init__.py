"""Network serving front end: asyncio HTTP/JSON over the session pool.

The wire protocol a "millions of users" deployment talks to: an
admission-controlled query service (:mod:`repro.serving.server`) in front
of :meth:`~repro.core.sommelier.SommelierDB.session_pool`, with bounded
queuing, per-client rate limits, request timeouts that cancel the engine
cooperatively, chunk-streamed JSON results and a ``/stats`` counter
surface.  Stdlib-only (asyncio + http.client), so CI runs it hermetically.
"""

from .admission import (
    AdmissionController,
    AdmissionRejected,
    ClientRateLimiter,
    TokenBucket,
)
from .client import QueryResponse, ServingClient
from .server import (
    ServerConfig,
    ServerHandle,
    ServerStats,
    SommelierServer,
    start_in_thread,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ClientRateLimiter",
    "TokenBucket",
    "QueryResponse",
    "ServingClient",
    "ServerConfig",
    "ServerHandle",
    "ServerStats",
    "SommelierServer",
    "start_in_thread",
]
