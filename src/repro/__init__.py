"""repro — a reproduction of "The DBMS – your Big Data Sommelier" (ICDE 2015).

A partial-loading-aware columnar DBMS for chunked scientific data: only the
metadata of a file repository is loaded eagerly; actual data chunks are
ingested lazily during query evaluation, derived metadata materializes
incrementally, and loaded chunks are cached by a Recycler.

Public entry points:

* :class:`repro.SommelierDB` — create a database, register a repository,
  run SQL (the facade over the two-stage execution model);
* :mod:`repro.core.loading` — the five loading approaches of the paper's
  evaluation (``lazy``, ``eager_plain``, ``eager_csv``, ``eager_index``,
  ``eager_dmd``);
* :mod:`repro.data` — synthetic INGV-like repository builders (Table II);
* :mod:`repro.workloads` — the T1–T5 query templates and workload
  generators of Section VI;
* :mod:`repro.engine` — the underlying columnar engine substrate;
* :mod:`repro.mseed` — the xseed chunk file format (mSEED stand-in).
"""

from .core.loading import APPROACHES, LoadReport, prepare
from .core.query_types import QueryType
from .core.session import SessionPool, SommelierSession
from .core.sommelier import SommelierDB
from .core.two_stage import QueryResult, TwoStageOptions
from .mseed.repository import FileRepository

__version__ = "1.0.0"

__all__ = [
    "APPROACHES",
    "FileRepository",
    "LoadReport",
    "QueryResult",
    "QueryType",
    "SessionPool",
    "SommelierDB",
    "SommelierSession",
    "TwoStageOptions",
    "prepare",
    "__version__",
]
