"""Runtime lock-order sanitizer.

Every lock in the engine is constructed through :func:`make_lock` /
:func:`make_rlock` with a stable, human-readable name (``"Recycler._lock"``,
``"SharedScanScheduler._lock"``, ...).  By default the factories return plain
``threading`` primitives — zero overhead, nothing recorded.  When the
``REPRO_LOCK_SANITIZER`` environment variable is set to a non-empty value
other than ``"0"``, they instead return :class:`SanitizedLock` wrappers that

* keep a per-thread stack of currently-held locks,
* record every *order edge* ``(held, acquired)`` into a global graph, and
* raise :class:`LockOrderViolation` the moment a thread acquires locks in an
  order that inverts a previously-observed edge — i.e. a potential deadlock
  is reported deterministically even when the interleaving that would hang
  never happens in this run.

The sanitizer is the runtime half of the static ``lock-order`` checker in
``repro.analysis``: CI runs the tier-1 suite with ``REPRO_LOCK_SANITIZER=1``
so the statically-derived acquisition graph is cross-validated against what
the code actually does under test load.

Identity is *name-level*, not object-level: two instances of the same class
share lock names, so an inversion between ``db1.recycler._lock`` and
``db2.recycler._lock`` is reported even though the objects differ.  That is
deliberate — the static checker reasons about classes, not instances — but it
means independent same-named locks that are legitimately nested must be given
distinct names (the Recycler's stripes share one ``"Recycler._stripes"`` name
because stripes are never nested within each other).
"""

from __future__ import annotations

import os
import threading
from typing import List, Protocol, Tuple

ENV_FLAG = "REPRO_LOCK_SANITIZER"

__all__ = [
    "ENV_FLAG",
    "LockOrderViolation",
    "Lockable",
    "SanitizedLock",
    "make_lock",
    "make_rlock",
    "observed_edges",
    "reset_observed_edges",
    "sanitizer_enabled",
]


class LockOrderViolation(RuntimeError):
    """Two locks were acquired in inconsistent orders (potential deadlock)."""


class Lockable(Protocol):
    """Structural type shared by ``threading`` locks and sanitized wrappers."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc: object) -> None: ...


def sanitizer_enabled() -> bool:
    """True when the process should hand out instrumented locks."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class _OrderGraph:
    """Global dynamic lock-order edge graph.

    An edge ``a -> b`` means "some thread held *a* while acquiring *b*"; the
    witness string records where.  Guarded by a raw ``threading.Lock`` (not a
    sanitized one) so the sanitizer can never recurse into itself.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: dict[Tuple[str, str], str] = {}

    def record(self, held: Tuple[str, ...], name: str) -> None:
        if not held:
            return
        thread = threading.current_thread().name
        witness = f"thread {thread!r} held [{', '.join(held)}] acquiring {name!r}"
        with self._mutex:
            for h in held:
                if h == name:
                    continue
                inverse = self._edges.get((name, h))
                if inverse is not None:
                    raise LockOrderViolation(
                        f"lock order inversion: {h!r} -> {name!r} ({witness}) "
                        f"contradicts previously observed {name!r} -> {h!r} "
                        f"({inverse})"
                    )
                self._edges.setdefault((h, name), witness)

    def edges(self) -> List[Tuple[str, str]]:
        with self._mutex:
            return sorted(self._edges)

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()


_GRAPH = _OrderGraph()


def observed_edges() -> List[Tuple[str, str]]:
    """Snapshot of all ``(held, acquired)`` edges seen so far in this process."""
    return _GRAPH.edges()


def reset_observed_edges() -> None:
    """Clear the global edge graph (test isolation helper)."""
    _GRAPH.reset()


class _HeldStacks(threading.local):
    def __init__(self) -> None:
        self.stack: List["SanitizedLock"] = []


_HELD = _HeldStacks()


class SanitizedLock:
    """Instrumented lock recording acquisition order per thread.

    Wraps a plain ``Lock`` (or ``RLock`` when ``reentrant=True``) and checks
    the global order graph *before* blocking, so an inversion is reported even
    on schedules where the real deadlock would not have materialized.
    """

    __slots__ = ("name", "_reentrant", "_inner")

    def __init__(self, name: str, *, reentrant: bool = False) -> None:
        self.name = name
        self._reentrant = reentrant
        self._inner: threading.Lock | threading.RLock = (
            threading.RLock() if reentrant else threading.Lock()
        )

    def _held_by_me(self) -> bool:
        return any(entry is self for entry in _HELD.stack)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        reacquire = self._held_by_me()
        if reacquire and not self._reentrant:
            # A plain Lock re-acquired by its holder is a guaranteed
            # self-deadlock; raising beats hanging the test suite.
            raise LockOrderViolation(
                f"thread {threading.current_thread().name!r} re-acquired "
                f"non-reentrant lock {self.name!r} it already holds"
            )
        if not reacquire and blocking:
            # Check/record before we block: this is what turns a latent
            # inversion into a deterministic failure.
            self._record_edges()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if not reacquire and not blocking:
                self._record_edges()
            _HELD.stack.append(self)
        return acquired

    def _record_edges(self) -> None:
        held = tuple(dict.fromkeys(entry.name for entry in _HELD.stack))
        _GRAPH.record(held, self.name)

    def release(self) -> None:
        stack = _HELD.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        self._inner.release()

    def locked(self) -> bool:
        if not self._reentrant:
            return self._inner.locked()  # type: ignore[union-attr]
        # RLock exposes no portable "locked" probe; approximate with
        # whether *this* thread holds it, which is what callers here use
        # it for (assertions in tests).
        return self._held_by_me()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self._reentrant else "Lock"
        return f"<SanitizedLock {self.name!r} ({kind})>"


def make_lock(name: str) -> Lockable:
    """A mutual-exclusion lock, instrumented when the sanitizer is enabled.

    ``name`` should be stable and unique per lock *role* (conventionally
    ``"ClassName._attr"``); it is how the sanitizer and the static
    ``lock-order`` checker line up their graphs.
    """
    if sanitizer_enabled():
        return SanitizedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> Lockable:
    """A reentrant lock, instrumented when the sanitizer is enabled."""
    if sanitizer_enabled():
        return SanitizedLock(name, reentrant=True)
    return threading.RLock()
