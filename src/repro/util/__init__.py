"""Small shared utilities that sit below the engine layers."""

from .lock_sanitizer import LockOrderViolation, make_lock, make_rlock, sanitizer_enabled

__all__ = [
    "LockOrderViolation",
    "make_lock",
    "make_rlock",
    "sanitizer_enabled",
]
