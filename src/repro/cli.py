"""Command-line interface: build datasets, run queries, regenerate figures.

Usage::

    python -m repro build --base /tmp/data --sf 3 --scale test
    python -m repro query --base /tmp/data --sf 3 --scale test \
        --sql "SELECT COUNT(*) AS n FROM gmdview" [--approach lazy] [--explain]
    python -m repro explain --base /tmp/data --sf 3 --scale test \
        --sql "SELECT COUNT(*) AS n FROM dataview" [--warm-sql "..."]
    python -m repro cache --base /tmp/data --sf 3 --scale test \
        --sql "SELECT COUNT(*) AS n FROM dataview" [--json] [--workdir /tmp/db]
    python -m repro serve --base /tmp/data --sf 3 --scale test \
        [--port 8080] [--pool-size 4] [--max-queue 8] [--rate-limit 10]
    python -m repro bench --experiment fig6 [--profile quick]
    python -m repro inspect --base /tmp/data --sf 3 --scale test
    python -m repro analyze [--root src/repro] [--json] [--output out.json] \
        [--checker durability --checker swallow] [--list-checkers] \
        [--fail-on error] [--baseline accepted.json]

The CLI wraps the same public API the examples use; it exists so a
downstream user can poke at a repository without writing Python.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.findings import SEVERITIES
from .bench import (
    ExperimentContext,
    PROFILES,
    run_ablation_chunk_access,
    run_ablation_recycler,
    run_ablation_rules,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table2,
    run_table3,
)
from .core.loading import APPROACHES, prepare
from .data import SCALE_PAPER, SCALE_SMALL, SCALE_TEST, build_or_reuse

__all__ = ["main", "build_parser"]

SCALES = {"test": SCALE_TEST, "small": SCALE_SMALL, "paper": SCALE_PAPER}

EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "ablation-rules": run_ablation_rules,
    "ablation-recycler": run_ablation_recycler,
    "ablation-chunk-access": run_ablation_chunk_access,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The DBMS - your Big Data Sommelier (ICDE'15 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build a synthetic repository")
    _add_dataset_args(build)

    inspect = commands.add_parser(
        "inspect", help="list a repository's chunks and sizes"
    )
    _add_dataset_args(inspect)

    query = commands.add_parser("query", help="run SQL against a repository")
    _add_dataset_args(query)
    query.add_argument("--sql", required=True, help="the SELECT statement")
    query.add_argument(
        "--approach",
        default="lazy",
        choices=sorted(APPROACHES),
        help="loading approach to prepare the database with",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the compiled plan instead of executing",
    )
    query.add_argument(
        "--limit", type=int, default=20, help="max rows to print"
    )
    query.add_argument(
        "--io-threads", type=int, default=None,
        help="decode threads for the parallel stage-two pipeline",
    )
    query.add_argument(
        "--executor", default=None, choices=("thread", "process"),
        help="stage-two decode executor (process = GIL-free workers)",
    )
    query.add_argument(
        "--clients", type=int, default=1,
        help="run the query from N concurrent sessions and report throughput",
    )
    query.add_argument(
        "--result-cache", action="store_true",
        help="enable the semantic result recycler (repeats and subsumed "
        "queries are served without re-executing)",
    )
    query.add_argument(
        "--shared-scan", action="store_true",
        help="co-schedule overlapping concurrent scans so each chunk is "
        "fetched and decoded once per wave",
    )
    query.add_argument(
        "--shards", type=int, default=None,
        help="partition stage two across N shard worker processes "
        "(scatter-gather; 0 disables)",
    )

    explain = commands.add_parser(
        "explain",
        help="print the compiled program and the stage-two chunk plan "
        "(chunks pruned, predicted tier, cost-ordered fetch schedule)",
    )
    _add_dataset_args(explain)
    explain.add_argument("--sql", required=True, help="the SELECT statement")
    explain.add_argument(
        "--approach",
        default="lazy",
        choices=sorted(APPROACHES),
        help="loading approach to prepare the database with",
    )
    explain.add_argument(
        "--warm-sql", action="append", default=None,
        help="query to execute first (warms caches and value statistics; "
        "repeatable)",
    )

    cache = commands.add_parser(
        "cache",
        help="print per-tier recycler statistics (memory + on-disk store) "
        "plus chunk-planner and prefetch counters",
    )
    _add_dataset_args(cache)
    cache.add_argument(
        "--sql", action="append", default=None,
        help="query to run before reporting (repeatable)",
    )
    cache.add_argument(
        "--workdir", default=None,
        help="persistent database directory; reopened warm when it holds "
        "a checkpoint",
    )
    cache.add_argument("--json", action="store_true", help="emit JSON")
    cache.add_argument(
        "--io-threads", type=int, default=None,
        help="decode threads for the parallel stage-two pipeline",
    )
    cache.add_argument(
        "--executor", default=None, choices=("thread", "process"),
        help="stage-two decode executor",
    )
    cache.add_argument(
        "--result-cache", action="store_true",
        help="enable the semantic result recycler and report its counters",
    )
    cache.add_argument(
        "--shared-scan", action="store_true",
        help="co-schedule overlapping concurrent scans and report counters",
    )
    cache.add_argument(
        "--shards", type=int, default=None,
        help="partition stage two across N shard worker processes and "
        "report the coordinator's counters",
    )

    serve = commands.add_parser(
        "serve",
        help="run the asyncio HTTP/JSON query service over a repository "
        "(admission control, rate limits, /stats; Ctrl-C drains)",
    )
    _add_dataset_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--pool-size", type=int, default=4,
        help="session pool size = max concurrently executing queries",
    )
    serve.add_argument(
        "--max-queue", type=int, default=8,
        help="requests allowed to wait for a session before 503s are shed",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-client token-bucket rate in req/s (0 disables)",
    )
    serve.add_argument(
        "--burst", type=float, default=4.0,
        help="per-client token-bucket burst capacity",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request budget; expiry cancels the query (504)",
    )
    serve.add_argument(
        "--workdir", default=None,
        help="persistent database directory; reopened warm when it holds "
        "a checkpoint",
    )
    serve.add_argument(
        "--io-threads", type=int, default=None,
        help="decode threads for the parallel stage-two pipeline",
    )
    serve.add_argument(
        "--executor", default=None, choices=("thread", "process"),
        help="stage-two decode executor",
    )
    serve.add_argument(
        "--result-cache", action="store_true",
        help="enable the semantic result recycler",
    )
    serve.add_argument(
        "--shared-scan", action="store_true",
        help="co-schedule overlapping concurrent scans so each chunk is "
        "fetched and decoded once per wave",
    )
    serve.add_argument(
        "--shards", type=int, default=None,
        help="partition stage two across N shard worker processes "
        "(scatter-gather; 0 disables)",
    )

    bench = commands.add_parser(
        "bench", help="regenerate one of the paper's tables/figures"
    )
    bench.add_argument(
        "--experiment", required=True, choices=sorted(EXPERIMENTS)
    )
    bench.add_argument(
        "--profile", default="quick", choices=sorted(PROFILES)
    )
    bench.add_argument(
        "--base", default=None, help="dataset cache directory"
    )

    analyze = commands.add_parser(
        "analyze",
        help="run the repo's AST invariant checkers (counter plumbing, "
        "pickle boundaries, async blocking, cancellation polls, "
        "durability, lock discipline); nonzero exit on findings",
    )
    analyze.add_argument(
        "--root", action="append", default=None,
        help="directory tree to analyze (repeatable; defaults to the "
        "installed repro package)",
    )
    analyze.add_argument(
        "--checker", action="append", default=None,
        help="run only this checker id (repeatable)",
    )
    analyze.add_argument("--json", action="store_true", help="emit JSON")
    analyze.add_argument(
        "--output", default=None,
        help="also write the JSON report to this path (written even when "
        "findings fail the run)",
    )
    analyze.add_argument(
        "--list-checkers", action="store_true",
        help="list available checker ids and exit",
    )
    analyze.add_argument(
        "--fail-on", choices=list(SEVERITIES), default=SEVERITIES[0],
        help="minimum severity that fails the run (default: "
        f"{SEVERITIES[0]}, i.e. every finding fails)",
    )
    analyze.add_argument(
        "--baseline", default=None,
        help="JSON report of accepted findings; findings present in it "
        "are counted as baselined, not reported",
    )
    return parser


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--base", required=True, help="dataset directory")
    parser.add_argument(
        "--sf", type=int, default=1, choices=(1, 3, 9, 27),
        help="scale factor",
    )
    parser.add_argument(
        "--scale", default="test", choices=sorted(SCALES),
        help="repository scale preset",
    )
    parser.add_argument(
        "--fiam", action="store_true", help="single-station FIAM dataset"
    )


def _command_build(args: argparse.Namespace) -> int:
    repository, stats = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], args.fiam
    )
    print(
        f"repository at {repository.root}: {stats.num_files} files, "
        f"{stats.num_segments} segments, {stats.num_samples:,} samples, "
        f"{stats.repo_bytes:,} bytes"
    )
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    repository, _ = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], args.fiam
    )
    chunks = repository.list_chunks()
    for chunk in chunks[:20]:
        print(f"{chunk.size_bytes:>10,}  {chunk.uri}")
    if len(chunks) > 20:
        print(f"... and {len(chunks) - 20} more chunks")
    print(f"total: {len(chunks)} chunks, {repository.total_bytes():,} bytes")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    repository, _ = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], args.fiam
    )
    db, report = prepare(
        args.approach, repository, options=_two_stage_options(args)
    )
    try:
        print(
            f"prepared with {args.approach} in {report.total_seconds:.3f}s "
            f"({', '.join(f'{k}={v:.3f}s' for k, v in report.seconds.items())})"
        )
        if args.explain:
            print(db.explain(args.sql))
            return 0
        if args.clients > 1:
            return _run_concurrent_clients(db, args.sql, args.clients)
        result = db.query(args.sql)
        for row in result.table.to_dicts()[: args.limit]:
            print(row)
        if result.table.num_rows > args.limit:
            print(f"... {result.table.num_rows - args.limit} more rows")
        served = (
            f", served from result cache ({result.result_cache})"
            if result.result_cache
            else ""
        )
        print(
            f"[{result.seconds * 1000:.1f}ms, "
            f"{result.stats.chunks_loaded} chunk(s) loaded, "
            f"{result.stats.chunks_from_cache} from cache{served}]"
        )
        return 0
    finally:
        db.close()


def _run_concurrent_clients(db, sql: str, clients: int) -> int:
    """Issue the same query from N pooled sessions at once."""
    import time
    from concurrent.futures import ThreadPoolExecutor

    pool = db.session_pool(size=clients)

    def one_client() -> float:
        with pool.session() as session:
            result = session.query(sql)
            return result.seconds

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as executor:
        latencies = list(executor.map(lambda _: one_client(), range(clients)))
    wall = time.perf_counter() - started
    print(
        f"{clients} concurrent clients: {wall:.3f}s wall, "
        f"{clients / wall:.2f} queries/s, "
        f"avg latency {sum(latencies) / len(latencies) * 1000:.1f}ms"
    )
    return 0


def _two_stage_options(args: argparse.Namespace):
    """TwoStageOptions from the shared --io-threads/--executor/... flags."""
    from .core.two_stage import TwoStageOptions

    option_kwargs = {}
    if getattr(args, "io_threads", None) is not None:
        option_kwargs["io_threads"] = args.io_threads
    if getattr(args, "executor", None) is not None:
        option_kwargs["executor"] = args.executor
    if getattr(args, "result_cache", False):
        option_kwargs["result_cache"] = True
    if getattr(args, "shared_scan", False):
        option_kwargs["shared_scan"] = True
    if getattr(args, "shards", None) is not None:
        option_kwargs["shards"] = args.shards
    return TwoStageOptions(**option_kwargs) if option_kwargs else None


def _prepare_or_reopen(args: argparse.Namespace, options):
    """A lazy database over --workdir (reopened warm) or the dataset args."""
    import os

    from .core.sommelier import SommelierDB

    checkpoint = (
        os.path.join(args.workdir, "catalog.json") if args.workdir else None
    )
    if checkpoint and os.path.exists(checkpoint):
        return SommelierDB.open(args.workdir, options=options)
    repository, _ = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], args.fiam
    )
    db, _ = prepare("lazy", repository, workdir=args.workdir, options=options)
    return db


def _command_cache(args: argparse.Namespace) -> int:
    """Run optional queries, then report per-tier recycler statistics."""
    from .jsonio import render_json

    db = _prepare_or_reopen(args, _two_stage_options(args))
    try:
        for sql in args.sql or ():
            db.query(sql)
        # The same serialization the serving front end's /stats embeds.
        stats = db.counters_snapshot()
        if args.json:
            print(render_json(stats, kind="cache-counters"))
        else:
            for section, counters in stats.items():
                parts = " ".join(f"{k}={v}" for k, v in counters.items())
                print(f"[{section}] {parts}")
        return 0
    finally:
        db.close()


def _command_serve(args: argparse.Namespace) -> int:
    """Run the serving front end until interrupted; Ctrl-C drains."""
    import asyncio
    import signal

    from .serving import ServerConfig, SommelierServer

    config = ServerConfig(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size,
        max_queue=args.max_queue,
        rate_limit_qps=args.rate_limit,
        rate_limit_burst=args.burst,
        request_timeout_s=args.request_timeout,
    )
    db = _prepare_or_reopen(args, _two_stage_options(args))

    async def run() -> None:
        server = SommelierServer(db, config)
        await server.start()
        print(
            f"serving on http://{config.host}:{server.port} "
            f"(pool={config.pool_size}, queue<={config.max_queue}, "
            f"timeout={config.request_timeout_s:g}s) — Ctrl-C drains"
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        print("draining in-flight queries ...")
        await server.stop(drain=True)

    try:
        asyncio.run(run())
        return 0
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        return 0
    finally:
        db.close()


def _command_explain(args: argparse.Namespace) -> int:
    """Compile-time view plus the runtime chunk plan (no stage two)."""
    repository, _ = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], args.fiam
    )
    db, _ = prepare(args.approach, repository)
    try:
        for sql in args.warm_sql or ():
            db.query(sql)
        print(db.explain(args.sql))
        print()
        print(db.explain_chunks(args.sql))
        return 0
    finally:
        db.close()


def _command_bench(args: argparse.Namespace) -> int:
    import os

    os.environ["REPRO_BENCH_PROFILE"] = args.profile
    ctx = ExperimentContext(base_dir=args.base)
    try:
        table = EXPERIMENTS[args.experiment](ctx)
        path = table.emit(f"{args.experiment.replace('-', '_')}.txt")
        print(f"\nsaved to {path}")
        return 0
    finally:
        ctx.close()


def _command_analyze(args: argparse.Namespace) -> int:
    """Run the static-analysis checkers; exit 1 on unsuppressed findings."""
    import os

    from .analysis import analyze, checker_ids, load_baseline
    from .jsonio import render_json

    if args.list_checkers:
        from .analysis import all_checkers

        for checker in all_checkers():
            print(f"{checker.id:<18} [{checker.severity}] "
                  f"{checker.description}")
        return 0
    try:
        only = tuple(args.checker) if args.checker else None
        roots = args.root or [os.path.dirname(os.path.abspath(__file__))]
        baseline = None
        if args.baseline:
            try:
                baseline = load_baseline(args.baseline)
            except (OSError, ValueError) as exc:
                print(f"cannot load baseline: {exc}", file=sys.stderr)
                return 2
        report = analyze(
            roots, only=only, baseline=baseline, fail_on=args.fail_on
        )
    except KeyError:
        known = ", ".join(checker_ids())
        print(f"unknown checker id; known checkers: {known}",
              file=sys.stderr)
        return 2
    rendered = render_json(report.to_payload(), kind="analyze-report")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.json:
        print(rendered)
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "build": _command_build,
        "inspect": _command_inspect,
        "query": _command_query,
        "explain": _command_explain,
        "cache": _command_cache,
        "serve": _command_serve,
        "bench": _command_bench,
        "analyze": _command_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
