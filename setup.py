"""Legacy setup shim.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` on
environments without the ``wheel`` package (the PEP 660 editable path needs
``bdist_wheel``).  Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
